"""N-CSJ and CSJ(g) — the compact similarity joins (Sections IV-B, IV-C).

Both algorithms follow the SSJ recursion but add the *early stopping*
clauses of Figure 3 (shown in italics in the paper):

* entering a single node whose bounding-shape diameter is below the query
  range emits the whole subtree as one group (line 2-3);
* entering a node pair whose combined bounding shape has diameter below
  the range emits both subtrees as one group (line 20-21).

They differ at the leaves: N-CSJ writes each remaining qualifying pair
individually (exactly like SSJ), whereas CSJ(g) offers each pair to the
``g`` most recently created groups via ``mergeIntoPrevGroup``
(:class:`~repro.core.groups.GroupBuffer`), creating a fresh two-point group
when no recent group can absorb it.  N-CSJ is implemented as CSJ with an
empty merge window (``g = 0``), which reproduces its behaviour exactly: a
two-point group is written as a plain link in the paper's output format.

Theorem 1 (completeness — every qualifying pair is implied by the output)
and Theorem 2 (correctness — no non-qualifying pair is implied) hold by
construction; the test suite re-verifies both against a brute-force join
for randomised inputs.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.groups import GroupBuffer
from repro.core.results import CollectSink, JoinResult, JoinSink
from repro.errors import BudgetExceededError
from repro.index.base import IndexNode, SpatialIndex
from repro.index.rtree import RectNode
from repro.io.pagesim import NodePager
from repro.io.writer import width_for
from repro.stats.counters import JoinStats

if TYPE_CHECKING:
    from repro.resilience.budget import Budget

__all__ = ["csj", "ncsj"]


def csj(
    tree: SpatialIndex,
    eps: float,
    g: int = 10,
    sink: Optional[JoinSink] = None,
    pager: Optional[NodePager] = None,
    budget: Optional["Budget"] = None,
    _algorithm_label: Optional[str] = None,
) -> JoinResult:
    """Run the compact similarity join CSJ(g) on ``tree``.

    ``g`` is the merge-window length; the paper recommends ``g ~ 10``
    (Figure 6).  ``g = 0`` degenerates to N-CSJ.  Returns a
    :class:`~repro.core.results.JoinResult` whose groups and links together
    imply exactly the SSJ output (Theorems 1 and 2).

    A breached ``budget`` stops the run cleanly: the in-flight group
    window is flushed first, so the sink holds a valid prefix of the
    output (every emitted link and group individually correct), which is
    attached to the raised :class:`~repro.errors.BudgetExceededError` as
    ``exc.partial``.
    """
    if eps <= 0:
        raise ValueError(f"query range must be positive, got {eps}")
    if g < 0:
        raise ValueError(f"window size g must be >= 0, got {g}")
    if sink is None:
        sink = CollectSink(id_width=width_for(tree.size))
    label = _algorithm_label or (f"csj({g})" if g else "ncsj")
    runner = _CSJRunner(tree, float(eps), int(g), sink, pager, budget)
    if budget is not None:
        budget.start()
    start = time.perf_counter()
    try:
        if tree.root is not None and tree.size > 1:
            runner.join_node(tree.root)
        runner.buffer.flush()
    except BudgetExceededError as exc:
        runner.buffer.flush()
        elapsed = time.perf_counter() - start
        stats = sink.stats
        stats.compute_time += elapsed - stats.write_time
        exc.partial = JoinResult.from_sink(
            sink, eps=eps, algorithm=label, g=g, index_name=type(tree).name
        )
        raise
    elapsed = time.perf_counter() - start
    stats = sink.stats
    stats.compute_time += elapsed - stats.write_time
    if pager is not None:
        stats.page_reads += pager.cache.misses
        stats.cache_hits += pager.cache.hits
    return JoinResult.from_sink(
        sink, eps=eps, algorithm=label, g=g, index_name=type(tree).name
    )


def ncsj(
    tree: SpatialIndex,
    eps: float,
    sink: Optional[JoinSink] = None,
    pager: Optional[NodePager] = None,
    budget: Optional["Budget"] = None,
) -> JoinResult:
    """Run the naive compact similarity join N-CSJ on ``tree``.

    Early stopping on tree nodes only; links that cross nodes are written
    individually, exactly like SSJ (Section IV-B).
    """
    return csj(
        tree, eps, g=0, sink=sink, pager=pager, budget=budget,
        _algorithm_label="ncsj",
    )


class _CSJRunner:
    """Recursive engine for one N-CSJ / CSJ(g) execution."""

    def __init__(
        self,
        tree: SpatialIndex,
        eps: float,
        g: int,
        sink: JoinSink,
        pager: Optional[NodePager],
        budget: Optional["Budget"] = None,
    ):
        self.points = tree.points
        self.metric = tree.metric
        self.eps = eps
        self.g = g
        self.sink = sink
        self.stats: JoinStats = sink.stats
        self.pager = pager
        self.budget = budget
        dim = tree.points.shape[1] if tree.points.ndim == 2 else None
        self.buffer = GroupBuffer(
            g, eps, sink, metric=tree.metric, stats=sink.stats, dim=dim
        )

    # ------------------------------------------------------------------
    # Group creation helpers
    # ------------------------------------------------------------------
    def _group_bounds(self, node: IndexNode, ids: np.ndarray) -> tuple[list, list]:
        """The group boundary corners for an early-stopped subtree.

        R-tree nodes already carry an MBR ("these shapes can be used
        directly", Section V-A); ball-shaped nodes fall back to the exact
        point MBR, which costs one pass over points we are about to write
        out anyway.
        """
        if isinstance(node, RectNode):
            return node.mbr.lo.tolist(), node.mbr.hi.tolist()
        pts = self.points[ids]
        return pts.min(axis=0).tolist(), pts.max(axis=0).tolist()

    def _emit_node_group(self, node: IndexNode) -> None:
        ids = node.subtree_ids()
        self.stats.early_stops += 1
        if len(ids) < 2:
            return  # a singleton implies no links; nothing to report
        lo, hi = self._group_bounds(node, ids)
        self.buffer.create_group(ids.tolist(), lo, hi)

    def _emit_pair_group(self, n1: IndexNode, n2: IndexNode) -> None:
        ids = np.concatenate([n1.subtree_ids(), n2.subtree_ids()])
        self.stats.early_stops += 1
        if len(ids) < 2:
            return
        if isinstance(n1, RectNode) and isinstance(n2, RectNode):
            mbr = n1.mbr.union(n2.mbr)
            lo, hi = mbr.lo.tolist(), mbr.hi.tolist()
        else:
            pts = self.points[ids]
            lo, hi = pts.min(axis=0).tolist(), pts.max(axis=0).tolist()
        self.buffer.create_group(ids.tolist(), lo, hi)

    # ------------------------------------------------------------------
    # simJoin(TreeNode n) — Figure 3, lines 1-18
    # ------------------------------------------------------------------
    def join_node(self, node: IndexNode) -> None:
        self.stats.nodes_visited += 1
        if self.budget is not None:
            self.budget.check(self.stats)
        if self.pager is not None:
            self.pager.visit(node)
        # Early stop (line 2): the whole subtree is one group.
        self.stats.mbr_checks += 1
        if node.diameter(self.metric) < self.eps:
            self._emit_node_group(node)
            return
        if node.is_leaf:
            self._leaf_self(node)
            return
        children = node.children
        for child in children:
            self.join_node(child)
        for a in range(len(children)):
            for b in range(a + 1, len(children)):
                self.stats.mbr_checks += 1
                if children[a].min_dist(children[b], self.metric) < self.eps:
                    self.join_pair(children[a], children[b])

    # ------------------------------------------------------------------
    # simJoin(TreeNode n1, n2) — Figure 3, lines 19-41
    # ------------------------------------------------------------------
    def join_pair(self, n1: IndexNode, n2: IndexNode) -> None:
        self.stats.node_pairs_visited += 1
        if self.budget is not None:
            self.budget.check(self.stats)
        if self.pager is not None:
            self.pager.visit(n1)
            self.pager.visit(n2)
        # Early stop (line 20): both subtrees together form one group.
        self.stats.mbr_checks += 1
        if n1.union_diameter(n2, self.metric) < self.eps:
            self._emit_pair_group(n1, n2)
            return
        if n1.is_leaf and n2.is_leaf:
            self._leaf_cross(n1, n2)
            return
        if n1.is_leaf:
            for child in n2.children:
                self.stats.mbr_checks += 1
                if n1.min_dist(child, self.metric) < self.eps:
                    self.join_pair(n1, child)
            return
        if n2.is_leaf:
            for child in n1.children:
                self.stats.mbr_checks += 1
                if child.min_dist(n2, self.metric) < self.eps:
                    self.join_pair(child, n2)
            return
        for c1 in n1.children:
            for c2 in n2.children:
                self.stats.mbr_checks += 1
                if c1.min_dist(c2, self.metric) < self.eps:
                    self.join_pair(c1, c2)

    # ------------------------------------------------------------------
    # Leaf-level link routing — Figure 3 lines 5-10 and 23-29
    # ------------------------------------------------------------------
    def _leaf_self(self, node: IndexNode) -> None:
        ids = node.entry_ids
        k = len(ids)
        if k < 2:
            return
        pts = self.points[np.asarray(ids, dtype=np.intp)]
        dists = self.metric.self_pairwise(pts)
        self.stats.distance_computations += k * (k - 1) // 2
        rows, cols = np.nonzero(np.triu(dists < self.eps, k=1))
        if not len(rows):
            return
        if self.g == 0:
            # N-CSJ: residual links go out individually, exactly like SSJ.
            id_arr = np.asarray(ids, dtype=np.intp)
            self.sink.write_links(id_arr[rows], id_arr[cols])
            return
        coords = pts.tolist()
        add_link = self.buffer.add_link
        for r, c in zip(rows.tolist(), cols.tolist()):
            add_link(ids[r], ids[c], coords[r], coords[c])

    def _leaf_cross(self, n1: IndexNode, n2: IndexNode) -> None:
        ids1 = n1.entry_ids
        ids2 = n2.entry_ids
        if not len(ids1) or not len(ids2):
            return
        pts1 = self.points[np.asarray(ids1, dtype=np.intp)]
        pts2 = self.points[np.asarray(ids2, dtype=np.intp)]
        dists = self.metric.pairwise(pts1, pts2)
        self.stats.distance_computations += len(ids1) * len(ids2)
        rows, cols = np.nonzero(dists < self.eps)
        if not len(rows):
            return
        if self.g == 0:
            self.sink.write_links(
                np.asarray(ids1, dtype=np.intp)[rows],
                np.asarray(ids2, dtype=np.intp)[cols],
            )
            return
        coords1 = pts1.tolist()
        coords2 = pts2.tolist()
        add_link = self.buffer.add_link
        for r, c in zip(rows.tolist(), cols.tolist()):
            add_link(ids1[r], ids2[c], coords1[r], coords2[c])
