"""Partition-based joins: PBSM and Spatial Hash Join (Section II-A).

The paper's related work lists two more index-free join families besides
the epsilon grid order:

* **Partition Based Spatial-Merge join** (Patel & DeWitt [14]): tile the
  space into a uniform grid of partitions; *replicate* each point into
  every partition within the query range of it; join each partition
  independently; de-duplicate with the reference-point method (a pair is
  reported only by the partition containing the midpoint of the pair).
* **Spatial Hash Join** (Lo & Ravishankar [13]): a two-dataset join where
  the *build* side defines the buckets and each *probe* point is hashed
  into every bucket it could match (here: grid buckets with an
  eps-dilated probe assignment).

Both enumerate all links individually, so both suffer the output
explosion; like Section VII's grid-order extension, each accepts the
compact treatment here (``compact=True``): cells whose point MBR diagonal
is below the range become groups, and residual links flow through the
CSJ(g) merge window.
"""

from __future__ import annotations

import itertools
import time
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.groups import GroupBuffer, apply_events
from repro.core.results import CollectSink, JoinResult, JoinSink
from repro.errors import BudgetExceededError
from repro.geometry.metrics import Metric, get_metric
from repro.io.writer import width_for
from repro.obs.tracing import span as trace_span

if TYPE_CHECKING:
    from repro.resilience.budget import Budget

__all__ = ["pbsm_join", "spatial_hash_join", "pbsm_plan", "partition_delta"]


def _partition_grid(pts: np.ndarray, cell: float) -> np.ndarray:
    return np.floor(pts / cell).astype(np.int64)


def pbsm_plan(
    pts: np.ndarray, eps: float, partitions_per_axis: Optional[int] = None
) -> tuple[dict[tuple[int, ...], np.ndarray], np.ndarray, int]:
    """Deterministic PBSM partitioning: replicated cells plus home map.

    Returns ``(cells, home_of, partitions_per_axis)``; ``cells`` maps each
    partition key to its replicated member ids and iterates in sorted key
    order — the canonical task order, independent of who executes the
    partitions.  Requires at least one point.
    """
    n, dim = pts.shape
    if partitions_per_axis is None:
        # Aim for ~sqrt(n) partitions, but keep cells >= 2 eps wide so
        # replication stays bounded.
        target = max(1, int(round(n ** (1.0 / (2 * dim)))))
        span = float(pts.max() - pts.min()) or 1.0
        partitions_per_axis = max(1, min(target, int(span / (2 * eps)) or 1))
    lo = pts.min(axis=0)
    span = pts.max(axis=0) - lo
    span[span == 0.0] = 1.0
    cell = span / partitions_per_axis

    # Replicate: a point joins every partition its eps-ball touches.
    members: dict[tuple[int, ...], list[int]] = {}
    low_idx = np.floor((pts - lo - eps) / cell).astype(np.int64)
    high_idx = np.floor((pts + eps - lo) / cell).astype(np.int64)
    np.clip(low_idx, 0, partitions_per_axis - 1, out=low_idx)
    np.clip(high_idx, 0, partitions_per_axis - 1, out=high_idx)
    for pid in range(n):
        ranges = [range(low_idx[pid, d], high_idx[pid, d] + 1) for d in range(dim)]
        for key in itertools.product(*ranges):
            members.setdefault(key, []).append(pid)

    home_of = np.floor((pts - lo) / cell).astype(np.int64)
    np.clip(home_of, 0, partitions_per_axis - 1, out=home_of)
    cells = {
        key: np.asarray(members[key], dtype=np.intp) for key in sorted(members)
    }
    return cells, home_of, partitions_per_axis


def partition_delta(
    pts: np.ndarray,
    ids: np.ndarray,
    key: np.ndarray,
    home_of: np.ndarray,
    eps: float,
    metric,
    compact: bool,
) -> tuple[list, int]:
    """Pure PBSM partition task: ``(events, distance_computations)``.

    Applies the reference-point de-duplication before emitting, so the
    partitions' events can be replayed in any canonical order without
    double-reporting replicated pairs.
    """
    k = len(ids)
    if k < 2:
        return [], 0
    part_pts = pts[ids]
    t_rows, t_cols, dists = metric.condensed_self(part_pts)
    dc = k * (k - 1) // 2
    hit = np.flatnonzero(dists < eps)
    if not len(hit):
        return [], dc
    rows, cols = t_rows[hit], t_cols[hit]
    # Reference-point de-duplication: the pair belongs to this partition
    # iff the partition of the *smaller id's home cell*... PBSM uses the
    # pair's reference point; we use the home cell of the pair's first
    # point by id, which is equivalent (each pair claimed exactly once).
    id_rows = ids[rows]
    id_cols = ids[cols]
    first = np.minimum(id_rows, id_cols)
    owned = (home_of[first] == key).all(axis=1)
    id_rows, id_cols = id_rows[owned], id_cols[owned]
    rows, cols = rows[owned], cols[owned]
    if not len(rows):
        return [], dc
    if not compact:
        return [("links", id_rows, id_cols)], dc
    coords = part_pts.tolist()
    rows = rows.tolist()
    cols = cols.tolist()
    return [(
        "linkseq",
        id_rows.tolist(),
        id_cols.tolist(),
        [coords[r] for r in rows],
        [coords[c] for c in cols],
    )], dc


def pbsm_join(
    points: np.ndarray,
    eps: float,
    partitions_per_axis: Optional[int] = None,
    compact: bool = False,
    g: int = 10,
    sink: Optional[JoinSink] = None,
    metric: object = None,
    budget: Optional["Budget"] = None,
) -> JoinResult:
    """PBSM similarity self-join with replication and reference-point
    de-duplication.

    ``partitions_per_axis`` defaults to a grid whose cells are several
    query ranges wide (the PBSM regime: few, large partitions — unlike
    the epsilon grid order's eps-sized cells).
    """
    if eps <= 0:
        raise ValueError(f"query range must be positive, got {eps}")
    m = get_metric(metric)
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    n, dim = pts.shape if pts.size else (0, 2)
    if sink is None:
        sink = CollectSink(id_width=width_for(n))
    stats = sink.stats
    buffer = GroupBuffer(g if compact else 0, eps, sink, metric=m, stats=stats, dim=dim)

    if budget is not None:
        budget.start()
    start_time = time.perf_counter()
    if n > 1:
        with trace_span("plan", algorithm="pbsm", points=n):
            cells, home_of, partitions_per_axis = pbsm_plan(
                pts, eps, partitions_per_axis
            )
        try:
            with trace_span("descend", algorithm="pbsm", partitions=len(cells)):
                for key, ids in cells.items():
                    if budget is not None:
                        budget.check(stats)
                    _join_partition(
                        pts, ids, np.asarray(key), home_of, eps, m,
                        compact, buffer, sink, stats,
                    )
        except BudgetExceededError as exc:
            buffer.flush()
            stats.compute_time += time.perf_counter() - start_time - stats.write_time
            label = (f"pbsm-csj({g})" if g else "pbsm-ncsj") if compact else "pbsm"
            exc.partial = JoinResult.from_sink(
                sink, eps=eps, algorithm=label, g=g if compact else None,
                index_name="pbsm",
            )
            raise
    with trace_span("emit", algorithm="pbsm"):
        buffer.flush()
    stats.compute_time += time.perf_counter() - start_time - stats.write_time
    label = (f"pbsm-csj({g})" if g else "pbsm-ncsj") if compact else "pbsm"
    return JoinResult.from_sink(
        sink, eps=eps, algorithm=label, g=g if compact else None, index_name="pbsm"
    )


def _join_partition(
    pts, ids, key, home_of, eps, metric, compact, buffer, sink, stats
) -> None:
    events, dc = partition_delta(pts, ids, key, home_of, eps, metric, compact)
    stats.distance_computations += dc
    apply_events(events, sink, buffer)


def spatial_hash_join(
    points_build: np.ndarray,
    points_probe: np.ndarray,
    eps: float,
    compact: bool = False,
    g: int = 10,
    sink: Optional[JoinSink] = None,
    metric: object = None,
) -> JoinResult:
    """Spatial hash join of two datasets; returns cross links.

    The build side is hashed into eps-sized grid buckets; every probe
    point is tested against the buckets its eps-ball touches, so each
    qualifying cross pair is found exactly once (probe-major order, no
    replication de-dup needed).  ``compact=True`` produces group pairs
    via the CSJ(g) window, like the dual-tree compact spatial join.
    """
    if eps <= 0:
        raise ValueError(f"query range must be positive, got {eps}")
    m = get_metric(metric)
    build = np.atleast_2d(np.asarray(points_build, dtype=float))
    probe = np.atleast_2d(np.asarray(points_probe, dtype=float))
    if sink is None:
        sink = CollectSink(id_width=width_for(max(len(build), len(probe))))
    stats = sink.stats

    start_time = time.perf_counter()
    buckets: dict[tuple[int, ...], np.ndarray] = {}
    if len(build):
        coords = np.floor(build / eps).astype(np.int64)
        order = np.lexsort(coords.T[::-1])
        start = 0
        sorted_coords = coords[order]
        for i in range(1, len(order) + 1):
            if i == len(order) or not np.array_equal(
                sorted_coords[i], sorted_coords[start]
            ):
                key = tuple(int(c) for c in sorted_coords[start])
                buckets[key] = order[start:i]
                start = i

    window: list = []  # (ids_build set, ids_probe set, lo, hi)
    norm_seq = m.norm_seq

    def emit(i_build: int, j_probe: int, p_build, p_probe) -> None:
        if compact and g > 0:
            pair_lo = [a if a < b else b for a, b in zip(p_build, p_probe)]
            pair_hi = [b if a < b else a for a, b in zip(p_build, p_probe)]
            for group in reversed(window):
                stats.merge_attempts += 1
                lo = [x if x < y else y for x, y in zip(group[2], pair_lo)]
                hi = [x if x > y else y for x, y in zip(group[3], pair_hi)]
                stats.mbr_checks += 1
                if norm_seq([h - l for l, h in zip(lo, hi)]) < eps:
                    group[0].add(i_build)
                    group[1].add(j_probe)
                    group[2], group[3] = lo, hi
                    stats.merge_successes += 1
                    return
            window.append([{i_build}, {j_probe}, pair_lo, pair_hi])
            if len(window) > g:
                _write_pair_group(window.pop(0), sink)
            return
        sink.write_link_raw(i_build, j_probe)

    if len(build) and len(probe):
        dim = probe.shape[1]
        probe_cells_lo = np.floor((probe - eps) / eps).astype(np.int64)
        probe_cells_hi = np.floor((probe + eps) / eps).astype(np.int64)
        for j in range(len(probe)):
            p = probe[j]
            p_list = p.tolist()
            ranges = [
                range(probe_cells_lo[j, d], probe_cells_hi[j, d] + 1)
                for d in range(dim)
            ]
            for key in itertools.product(*ranges):
                ids = buckets.get(key)
                if ids is None:
                    continue
                dists = m.point_to_points(p, build[ids])
                stats.distance_computations += len(ids)
                hits = ids[dists < eps]
                for i in hits.tolist():
                    emit(int(i), j, build[i].tolist(), p_list)
    while window:
        _write_pair_group(window.pop(0), sink)
    stats.compute_time += time.perf_counter() - start_time - stats.write_time
    label = (f"hash-csj({g})" if g else "hash-ncsj") if compact else "hash"
    return JoinResult.from_sink(
        sink, eps=eps, algorithm=label, g=g if compact else None, index_name="hash"
    )


def _write_pair_group(group, sink: JoinSink) -> None:
    ids_build, ids_probe = group[0], group[1]
    if len(ids_build) == 1 and len(ids_probe) == 1:
        (i,), (j,) = ids_build, ids_probe
        sink.write_link_raw(i, j)
        return
    sink.write_group_pair(sorted(ids_build), sorted(ids_probe))
