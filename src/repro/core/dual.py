"""Dual-tree spatial joins between two datasets (Section IV-D).

The self-join algorithms adapt directly to spatial joins: only the
two-node subroutine is invoked, starting from the two roots.  Output
semantics change, though — a spatial join reports only *cross* pairs, one
point from each dataset, so the compact output consists of **group
pairs** ``(A, B)`` standing for all links in ``A x B``.  The invariant is
the same as for self-join groups: the combined MBR of ``A ∪ B`` has a
diagonal strictly below the query range, which guarantees every cross pair
qualifies.

As the paper observes, when the two datasets populate the same dense
regions their indexes place similarly small nodes there, so the dual-node
early stop still fires where an output explosion threatens; with disjoint
distributions the inclusion check rarely succeeds, but then there is no
explosion to control either.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Optional

import numpy as np

from repro.core.results import CollectSink, JoinResult, JoinSink
from repro.index.base import IndexNode, SpatialIndex
from repro.index.rtree import RectNode
from repro.io.writer import width_for
from repro.stats.counters import JoinStats

__all__ = ["spatial_join", "compact_spatial_join"]


def spatial_join(
    tree_a: SpatialIndex,
    tree_b: SpatialIndex,
    eps: float,
    sink: Optional[JoinSink] = None,
    engine: str = "vectorized",
) -> JoinResult:
    """Standard dual-tree spatial join: every cross link individually.

    Link ids are positional: ``(i, j)`` means row ``i`` of ``tree_a``'s
    points and row ``j`` of ``tree_b``'s.  Links are therefore *not*
    normalised to ``i < j`` — the two sides are different relations.
    """
    return _dual_join(
        tree_a, tree_b, eps, sink, g=None, label="ssj-spatial", engine=engine
    )


def compact_spatial_join(
    tree_a: SpatialIndex,
    tree_b: SpatialIndex,
    eps: float,
    g: int = 10,
    sink: Optional[JoinSink] = None,
    engine: str = "vectorized",
) -> JoinResult:
    """Compact dual-tree spatial join: group pairs plus residual links.

    ``g = 0`` gives the naive variant (early stop only, no link merging),
    mirroring N-CSJ.
    """
    if g < 0:
        raise ValueError(f"window size g must be >= 0, got {g}")
    label = f"csj({g})-spatial" if g else "ncsj-spatial"
    return _dual_join(tree_a, tree_b, eps, sink, g=g, label=label, engine=engine)


def _dual_join(tree_a, tree_b, eps, sink, g, label, engine="vectorized") -> JoinResult:
    if eps <= 0:
        raise ValueError(f"query range must be positive, got {eps}")
    if tree_a.metric != tree_b.metric:
        raise ValueError(
            f"metric mismatch: {tree_a.metric.name} vs {tree_b.metric.name}"
        )
    if sink is None:
        sink = CollectSink(id_width=width_for(max(tree_a.size, tree_b.size)))
    runner = _make_runner(tree_a, tree_b, eps, g, sink, engine)
    start = time.perf_counter()
    if tree_a.root is not None and tree_b.root is not None:
        runner.join_pair(tree_a.root, tree_b.root)
    runner.flush()
    sink.stats.compute_time += time.perf_counter() - start - sink.stats.write_time
    return JoinResult.from_sink(
        sink, eps=eps, algorithm=label, g=g, index_name=type(tree_a).name
    )


def _make_runner(tree_a, tree_b, eps, g, sink, engine) -> "_DualRunner":
    from repro.core.frontier import _VecDualRunner, resolve_engine  # lazy: cycle

    if resolve_engine(engine) == "vectorized":
        from repro.index.packed import pack_index

        packed_a = pack_index(tree_a)
        packed_b = pack_index(tree_b)
        if (
            packed_a is not None
            and packed_b is not None
            and packed_a.kind == packed_b.kind
        ):
            return _VecDualRunner(tree_a, tree_b, eps, g, sink, packed_a, packed_b)
    return _DualRunner(tree_a, tree_b, eps, g, sink)


class _PairGroup:
    """An in-flight spatial-join group: one id set per side, joint bounds."""

    __slots__ = ("ids_a", "ids_b", "lo", "hi")

    def __init__(self, ids_a: set[int], ids_b: set[int], lo: list, hi: list):
        self.ids_a = ids_a
        self.ids_b = ids_b
        self.lo = lo
        self.hi = hi


class _DualRunner:
    """Recursive engine for one (compact) spatial join execution."""

    def __init__(self, tree_a, tree_b, eps: float, g: Optional[int], sink: JoinSink):
        self.points_a = tree_a.points
        self.points_b = tree_b.points
        self.metric = tree_a.metric
        self.eps = float(eps)
        self.compact = g is not None
        self.g = int(g) if g else 0
        self.sink = sink
        self.stats: JoinStats = sink.stats
        self._window: deque[_PairGroup] = deque()

    # ------------------------------------------------------------------
    # Recursion
    # ------------------------------------------------------------------
    def join_pair(self, n1: IndexNode, n2: IndexNode) -> None:
        self.stats.node_pairs_visited += 1
        if self.compact:
            self.stats.mbr_checks += 1
            if n1.union_diameter(n2, self.metric) < self.eps:
                self._emit_pair_group(n1, n2)
                return
        if n1.is_leaf and n2.is_leaf:
            self._leaf_cross(n1, n2)
            return
        if n1.is_leaf:
            for child in n2.children:
                self.stats.mbr_checks += 1
                if n1.min_dist(child, self.metric) < self.eps:
                    self.join_pair(n1, child)
            return
        if n2.is_leaf:
            for child in n1.children:
                self.stats.mbr_checks += 1
                if child.min_dist(n2, self.metric) < self.eps:
                    self.join_pair(child, n2)
            return
        for c1 in n1.children:
            for c2 in n2.children:
                self.stats.mbr_checks += 1
                if c1.min_dist(c2, self.metric) < self.eps:
                    self.join_pair(c1, c2)

    def _leaf_cross(self, n1: IndexNode, n2: IndexNode) -> None:
        ids1 = n1.entry_ids
        ids2 = n2.entry_ids
        if not len(ids1) or not len(ids2):
            return
        pts1 = self.points_a[np.asarray(ids1, dtype=np.intp)]
        pts2 = self.points_b[np.asarray(ids2, dtype=np.intp)]
        dists = self.metric.pairwise(pts1, pts2)
        self.stats.distance_computations += len(ids1) * len(ids2)
        rows, cols = np.nonzero(dists < self.eps)
        if not len(rows):
            return
        if self.g == 0:
            # Standard / naive spatial join: unnormalised individual links.
            for r, c in zip(rows.tolist(), cols.tolist()):
                self.sink.write_link_raw(ids1[r], ids2[c])
            return
        coords1 = pts1.tolist()
        coords2 = pts2.tolist()
        for r, c in zip(rows.tolist(), cols.tolist()):
            self._emit_link(ids1[r], ids2[c], coords1[r], coords2[c])

    # ------------------------------------------------------------------
    # Output routing
    # ------------------------------------------------------------------
    def _emit_link(self, i: int, j: int, p_i, p_j) -> None:
        """mergeIntoPrevGroup for cross links (``p_*`` are plain lists)."""
        pair_lo = [a if a < b else b for a, b in zip(p_i, p_j)]
        pair_hi = [b if a < b else a for a, b in zip(p_i, p_j)]
        norm_seq = self.metric.norm_seq
        for group in reversed(self._window):
            self.stats.merge_attempts += 1
            self.stats.mbr_checks += 1
            lo = [g if g < p else p for g, p in zip(group.lo, pair_lo)]
            hi = [g if g > p else p for g, p in zip(group.hi, pair_hi)]
            if norm_seq([h - l for l, h in zip(lo, hi)]) < self.eps:
                group.lo = lo
                group.hi = hi
                group.ids_a.add(i)
                group.ids_b.add(j)
                self.stats.merge_successes += 1
                return
        self._push_group(_PairGroup({i}, {j}, pair_lo, pair_hi))

    def _emit_pair_group(self, n1: IndexNode, n2: IndexNode) -> None:
        ids_a = n1.subtree_ids()
        ids_b = n2.subtree_ids()
        self.stats.early_stops += 1
        if not len(ids_a) or not len(ids_b):
            return
        if isinstance(n1, RectNode) and isinstance(n2, RectNode):
            mbr = n1.mbr.union(n2.mbr)
            lo, hi = mbr.lo.tolist(), mbr.hi.tolist()
        else:
            pts = np.vstack([self.points_a[ids_a], self.points_b[ids_b]])
            lo, hi = pts.min(axis=0).tolist(), pts.max(axis=0).tolist()
        group = _PairGroup(set(ids_a.tolist()), set(ids_b.tolist()), lo, hi)
        if self.compact and self.g > 0:
            self._push_group(group)
        else:
            self._write_group(group)

    def _push_group(self, group: _PairGroup) -> None:
        self._window.append(group)
        if len(self._window) > self.g:
            self._write_group(self._window.popleft())

    def _write_group(self, group: _PairGroup) -> None:
        if len(group.ids_a) == 1 and len(group.ids_b) == 1:
            (i,), (j,) = group.ids_a, group.ids_b
            self.sink.write_link_raw(i, j)
            return
        self.sink.write_group_pair(sorted(group.ids_a), sorted(group.ids_b))

    def flush(self) -> None:
        while self._window:
            self._write_group(self._window.popleft())
