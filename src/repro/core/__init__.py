"""The paper's contribution: SSJ, N-CSJ and CSJ(g), plus verification.

Entry points:

* :func:`repro.core.ssj.ssj` — the standard similarity join baseline;
* :func:`repro.core.csj.ncsj` / :func:`repro.core.csj.csj` — the compact
  joins (Sections IV-B and IV-C);
* :func:`repro.core.dual.spatial_join` /
  :func:`repro.core.dual.compact_spatial_join` — two-dataset joins;
* :func:`repro.core.egrid.egrid_join` — the index-free epsilon-grid-order
  join with the Section VII compact extension;
* :func:`repro.core.verify.check_equivalence` — executable Theorems 1 & 2;
* :mod:`repro.core.outliers` — small-group outlier mining.
"""

from repro.core.bruteforce import brute_force_cross_links, brute_force_links, count_links
from repro.core.clusters import UnionFind, component_sizes, connected_components
from repro.core.csj import csj, ncsj
from repro.core.dual import compact_spatial_join, spatial_join
from repro.core.egrid import egrid_join, egrid_sorted_join
from repro.core.groups import Group, GroupBuffer
from repro.core.metricspace import (
    ObjectMetric,
    brute_force_object_links,
    build_metric_index,
    metric_csj,
    metric_similarity_join,
)
from repro.core.outliers import find_outliers, group_size_profile, rank_by_isolation
from repro.core.partitioned import pbsm_join, spatial_hash_join
from repro.core.results import (
    CallbackSink,
    CollectSink,
    CountingSink,
    JoinResult,
    JoinSink,
    TextSink,
    make_sink,
)
from repro.core.ssj import ssj
from repro.core.verify import EquivalenceReport, check_equivalence, expand_result

__all__ = [
    "ssj",
    "ncsj",
    "csj",
    "spatial_join",
    "compact_spatial_join",
    "egrid_join",
    "egrid_sorted_join",
    "pbsm_join",
    "spatial_hash_join",
    "brute_force_links",
    "brute_force_cross_links",
    "count_links",
    "check_equivalence",
    "expand_result",
    "EquivalenceReport",
    "JoinResult",
    "JoinSink",
    "CollectSink",
    "CountingSink",
    "CallbackSink",
    "TextSink",
    "make_sink",
    "Group",
    "GroupBuffer",
    "ObjectMetric",
    "build_metric_index",
    "metric_csj",
    "metric_similarity_join",
    "brute_force_object_links",
    "find_outliers",
    "group_size_profile",
    "rank_by_isolation",
    "UnionFind",
    "connected_components",
    "component_sizes",
]
