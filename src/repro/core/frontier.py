"""Vectorized frontier join engine — batched pruning over packed trees.

The scalar runners in :mod:`repro.core.ssj`, :mod:`repro.core.csj` and
:mod:`repro.core.dual` recurse node pair by node pair, calling the
Python-level ``min_dist`` / ``union_diameter`` bounds once per candidate.
The runners here replace the recursion with an **explicit-stack frontier
loop** over a :class:`~repro.index.packed.PackedIndex`: pop a task, prune
the whole fanout² candidate block with one kernel call
(:mod:`repro.geometry.kernels`), push the survivors.

Parity contract (enforced by the determinism test suite):

* **Visit order** — subtasks are pushed in reverse so the LIFO pop order
  reproduces the recursion's preorder exactly; sink writes, pager visits
  and group-window mutations happen in the identical sequence.
* **Float decisions** — the kernels perform the scalar bounds' exact
  elementwise operations over float64 copies of the same per-node arrays,
  so every ``< eps`` comparison resolves identically and the two engines
  take the same branches everywhere.
* **Counters** — final ``JoinStats`` are equal.  ``mbr_checks`` for a
  candidate block are charged when the block is pruned (one batch) rather
  than one-by-one between descents; nothing observes the interleaving
  (:class:`~repro.resilience.budget.Budget` reads only deadline, output
  bytes and group counts), and the totals match the scalar engine.

Each vectorized runner subclasses its scalar twin and overrides only the
descent; leaf emission, group buffering and budget/pager handling are
inherited.  When a tree cannot be packed (object metrics, exotic node
types) the drivers silently fall back to the scalar runner — engine
selection changes performance, never results.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.csj import _CSJRunner
from repro.core.dual import _DualRunner
from repro.core.ssj import _SSJRunner
from repro.index.packed import PackedIndex, pack_index

__all__ = [
    "ENGINES",
    "resolve_engine",
    "enumerate_packed_task_ids",
    "enumerate_tree_tasks_packed",
    "_VecSSJRunner",
    "_VecCSJRunner",
    "_VecDualRunner",
]

#: Engine names accepted by the join drivers.  ``"paranoid"`` is handled
#: one level up (api / cli): it cross-checks both engines first.
ENGINES = ("scalar", "vectorized")


def resolve_engine(engine: str) -> str:
    engine = (engine or "vectorized").lower()
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known: {ENGINES}")
    return engine


# Frontier task tags.  A task is a tuple starting with one of these:
#   (_NODE, nid)                  simJoin(n)        — Figure 3 lines 1-18
#   (_NPAIRS, nid)                the deferred a<b child-pair block of n,
#                                 popped after all child subtrees finish
#                                 (the scalar pair loop runs after the
#                                 child recursion)
#   (_PAIR, n1, n2[, ud])         simJoin(n1, n2)   — Figure 3 lines 19-41;
#                                 ``ud`` is the precomputed union diameter
#                                 for the compact early stop
_NODE, _NPAIRS, _PAIR = 0, 1, 2


class _VecSSJRunner(_SSJRunner):
    """Frontier-loop engine for the standard join."""

    def __init__(self, tree, eps, sink, pager, budget, packed: PackedIndex):
        super().__init__(tree, eps, sink, pager, budget)
        self.packed = packed

    def join_node(self, node) -> None:
        p = self.packed
        if node is not p.nodes[0]:
            # Unpacked entry point (never hit by the drivers): stay scalar.
            super().join_node(node)
            return
        stats = self.stats
        eps = self.eps
        budget = self.budget
        pager = self.pager
        nodes = p.nodes
        leaf = p.leaf.tolist()
        child_beg = p.child_beg.tolist()
        child_end = p.child_end.tolist()
        stack: list[tuple] = [(_NODE, 0, 0)]
        push = stack.append
        while stack:
            tag, a, b = stack.pop()
            if tag == _PAIR:
                stats.node_pairs_visited += 1
                if budget is not None:
                    budget.check(stats)
                if pager is not None:
                    pager.visit(nodes[a])
                    pager.visit(nodes[b])
                la = leaf[a]
                lb = leaf[b]
                if la and lb:
                    self._leaf_cross(nodes[a], nodes[b])
                    continue
                if la:
                    beg, end = child_beg[b], child_end[b]
                    stats.mbr_checks += end - beg
                    _, cols = p.prune_cross([a], slice(beg, end), eps)
                    for c in cols[::-1].tolist():
                        push((_PAIR, a, beg + c))
                elif lb:
                    beg, end = child_beg[a], child_end[a]
                    stats.mbr_checks += end - beg
                    rows, _ = p.prune_cross(slice(beg, end), [b], eps)
                    for r in rows[::-1].tolist():
                        push((_PAIR, beg + r, b))
                else:
                    b1, e1 = child_beg[a], child_end[a]
                    b2, e2 = child_beg[b], child_end[b]
                    stats.mbr_checks += (e1 - b1) * (e2 - b2)
                    rows, cols = p.prune_cross(slice(b1, e1), slice(b2, e2), eps)
                    for r, c in zip(rows[::-1].tolist(), cols[::-1].tolist()):
                        push((_PAIR, b1 + r, b2 + c))
            elif tag == _NODE:
                stats.nodes_visited += 1
                if budget is not None:
                    budget.check(stats)
                if pager is not None:
                    pager.visit(nodes[a])
                if leaf[a]:
                    self._leaf_self(nodes[a])
                    continue
                beg, end = child_beg[a], child_end[a]
                push((_NPAIRS, a, 0))
                for cid in range(end - 1, beg - 1, -1):
                    push((_NODE, cid, 0))
            else:  # _NPAIRS
                beg, end = child_beg[a], child_end[a]
                k = end - beg
                stats.mbr_checks += k * (k - 1) // 2
                rows, cols = p.prune_self(beg, end, eps)
                for r, c in zip(rows[::-1].tolist(), cols[::-1].tolist()):
                    push((_PAIR, beg + r, beg + c))


class _VecCSJRunner(_CSJRunner):
    """Frontier-loop engine for N-CSJ / CSJ(g).

    Early stops use the packed per-node diameters and batched union
    diameters: each surviving pair is pushed with its union diameter
    already computed, and the ``mbr_checks`` charge for the test lands
    when the pair is popped — exactly where the scalar runner charges it.
    """

    def __init__(self, tree, eps, g, sink, pager, budget, packed: PackedIndex):
        super().__init__(tree, eps, g, sink, pager, budget)
        self.packed = packed

    def join_node(self, node) -> None:
        p = self.packed
        if node is not p.nodes[0]:
            super().join_node(node)
            return
        stats = self.stats
        eps = self.eps
        budget = self.budget
        pager = self.pager
        nodes = p.nodes
        leaf = p.leaf.tolist()
        child_beg = p.child_beg.tolist()
        child_end = p.child_end.tolist()
        diam = p.diam.tolist()
        stack: list[tuple] = [(_NODE, 0, 0, 0.0)]
        push = stack.append

        def push_pairs(rows, cols, base1, base2) -> None:
            ids1 = rows + base1 if base1 else rows
            ids2 = cols + base2 if base2 else cols
            ud = p.union_diag(ids1, ids2)
            for i1, i2, u in zip(
                ids1[::-1].tolist(), ids2[::-1].tolist(), ud[::-1].tolist()
            ):
                push((_PAIR, i1, i2, u))

        while stack:
            tag, a, b, ud = stack.pop()
            if tag == _PAIR:
                stats.node_pairs_visited += 1
                if budget is not None:
                    budget.check(stats)
                if pager is not None:
                    pager.visit(nodes[a])
                    pager.visit(nodes[b])
                # Early stop (line 20): both subtrees form one group.
                stats.mbr_checks += 1
                if ud < eps:
                    self._emit_pair_group(nodes[a], nodes[b])
                    continue
                la = leaf[a]
                lb = leaf[b]
                if la and lb:
                    self._leaf_cross(nodes[a], nodes[b])
                    continue
                if la:
                    beg, end = child_beg[b], child_end[b]
                    stats.mbr_checks += end - beg
                    _, cols = p.prune_cross([a], slice(beg, end), eps)
                    push_pairs(np.full(len(cols), a, dtype=np.intp), cols, 0, beg)
                elif lb:
                    beg, end = child_beg[a], child_end[a]
                    stats.mbr_checks += end - beg
                    rows, _ = p.prune_cross(slice(beg, end), [b], eps)
                    push_pairs(rows, np.full(len(rows), b, dtype=np.intp), beg, 0)
                else:
                    b1, e1 = child_beg[a], child_end[a]
                    b2, e2 = child_beg[b], child_end[b]
                    stats.mbr_checks += (e1 - b1) * (e2 - b2)
                    rows, cols = p.prune_cross(slice(b1, e1), slice(b2, e2), eps)
                    push_pairs(rows, cols, b1, b2)
            elif tag == _NODE:
                stats.nodes_visited += 1
                if budget is not None:
                    budget.check(stats)
                if pager is not None:
                    pager.visit(nodes[a])
                # Early stop (line 2): the whole subtree is one group.
                stats.mbr_checks += 1
                if diam[a] < eps:
                    self._emit_node_group(nodes[a])
                    continue
                if leaf[a]:
                    self._leaf_self(nodes[a])
                    continue
                beg, end = child_beg[a], child_end[a]
                push((_NPAIRS, a, 0, 0.0))
                for cid in range(end - 1, beg - 1, -1):
                    push((_NODE, cid, 0, 0.0))
            else:  # _NPAIRS
                beg, end = child_beg[a], child_end[a]
                k = end - beg
                stats.mbr_checks += k * (k - 1) // 2
                rows, cols = p.prune_self(beg, end, eps)
                push_pairs(rows, cols, beg, beg)


class _VecDualRunner(_DualRunner):
    """Frontier-loop engine for the dual-tree (two-dataset) joins."""

    def __init__(self, tree_a, tree_b, eps, g, sink,
                 packed_a: PackedIndex, packed_b: PackedIndex):
        super().__init__(tree_a, tree_b, eps, g, sink)
        self.packed_a = packed_a
        self.packed_b = packed_b

    def join_pair(self, n1, n2) -> None:
        pa = self.packed_a
        pb = self.packed_b
        if n1 is not pa.nodes[0] or n2 is not pb.nodes[0]:
            super().join_pair(n1, n2)
            return
        stats = self.stats
        eps = self.eps
        compact = self.compact
        nodes_a = pa.nodes
        nodes_b = pb.nodes
        leaf_a = pa.leaf.tolist()
        leaf_b = pb.leaf.tolist()
        cb_a, ce_a = pa.child_beg.tolist(), pa.child_end.tolist()
        cb_b, ce_b = pb.child_beg.tolist(), pb.child_end.tolist()
        root_ud = (
            float(pa.union_diag(np.array([0]), np.array([0]), pb)[0])
            if compact
            else 0.0
        )
        stack: list[tuple] = [(0, 0, root_ud)]
        push = stack.append

        def push_pairs(rows, cols, base1, base2) -> None:
            ids1 = rows + base1 if base1 else rows
            ids2 = cols + base2 if base2 else cols
            if compact:
                ud = pa.union_diag(ids1, ids2, pb)
                for i1, i2, u in zip(
                    ids1[::-1].tolist(), ids2[::-1].tolist(), ud[::-1].tolist()
                ):
                    push((i1, i2, u))
            else:
                for i1, i2 in zip(ids1[::-1].tolist(), ids2[::-1].tolist()):
                    push((i1, i2, 0.0))

        while stack:
            aid, bid, ud = stack.pop()
            stats.node_pairs_visited += 1
            if compact:
                stats.mbr_checks += 1
                if ud < eps:
                    self._emit_pair_group(nodes_a[aid], nodes_b[bid])
                    continue
            la = leaf_a[aid]
            lb = leaf_b[bid]
            if la and lb:
                self._leaf_cross(nodes_a[aid], nodes_b[bid])
                continue
            if la:
                beg, end = cb_b[bid], ce_b[bid]
                stats.mbr_checks += end - beg
                _, cols = pa.prune_cross([aid], slice(beg, end), eps, pb)
                push_pairs(np.full(len(cols), aid, dtype=np.intp), cols, 0, beg)
            elif lb:
                beg, end = cb_a[aid], ce_a[aid]
                stats.mbr_checks += end - beg
                rows, _ = pa.prune_cross(slice(beg, end), [bid], eps, pb)
                push_pairs(rows, np.full(len(rows), bid, dtype=np.intp), beg, 0)
            else:
                b1, e1 = cb_a[aid], ce_a[aid]
                b2, e2 = cb_b[bid], ce_b[bid]
                stats.mbr_checks += (e1 - b1) * (e2 - b2)
                rows, cols = pa.prune_cross(slice(b1, e1), slice(b2, e2), eps, pb)
                push_pairs(rows, cols, b1, b2)


def enumerate_tree_tasks_packed(tree, eps: float, compact: bool) -> Optional[list]:
    """Vectorized twin of ``checkpoint._enumerate_tree_tasks``.

    Produces the identical work-unit tuple sequence — ``("group", node)``,
    ``("self", node)``, ``("cross", n1, n2)``, ``("pgroup", n1, n2)`` with
    the same :class:`~repro.index.base.IndexNode` objects in the same
    order — using batched pruning instead of per-pair recursion, so
    checkpoint fingerprints and parallel task ids are engine-independent
    by construction.  Returns ``None`` when the tree cannot be packed.
    """
    packed = pack_index(tree)
    if packed is None:
        return None
    if tree.root is None or tree.size <= 1:
        return []
    nodes = packed.nodes
    return [
        (t[0],) + tuple(nodes[i] for i in t[1:])
        for t in _enumerate_packed_id_tasks(packed, eps, compact)
    ]


def enumerate_packed_task_ids(packed, eps: float, compact: bool) -> list:
    """The same canonical work-unit sequence, as packed node *ids*.

    Tuples are ``("group", nid)``, ``("self", nid)``, ``("cross", nid1,
    nid2)``, ``("pgroup", nid1, nid2)`` — positionally identical to
    :func:`enumerate_tree_tasks_packed` with each node replaced by its
    level-order id.  This is the form the shared-memory data plane
    executes against: it needs only the packed arrays, never the node
    objects, so a worker that adopted the arrays from a segment can
    enumerate (and execute) without ever holding a tree.
    """
    if packed is None or len(packed.entries) <= 1:
        return []
    return _enumerate_packed_id_tasks(packed, eps, compact)


def _enumerate_packed_id_tasks(p, eps: float, compact: bool) -> list:
    tasks: list[tuple] = []
    eps = float(eps)
    leaf = p.leaf.tolist()
    child_beg = p.child_beg.tolist()
    child_end = p.child_end.tolist()
    diam = p.diam.tolist()
    stack: list[tuple] = [(_NODE, 0, 0, 0.0)]
    push = stack.append

    def push_pairs(rows, cols, base1, base2) -> None:
        ids1 = rows + base1 if base1 else rows
        ids2 = cols + base2 if base2 else cols
        if compact:
            ud = p.union_diag(ids1, ids2)
            for i1, i2, u in zip(
                ids1[::-1].tolist(), ids2[::-1].tolist(), ud[::-1].tolist()
            ):
                push((_PAIR, i1, i2, u))
        else:
            for i1, i2 in zip(ids1[::-1].tolist(), ids2[::-1].tolist()):
                push((_PAIR, i1, i2, 0.0))

    while stack:
        tag, a, b, ud = stack.pop()
        if tag == _PAIR:
            if compact and ud < eps:
                tasks.append(("pgroup", a, b))
                continue
            la = leaf[a]
            lb = leaf[b]
            if la and lb:
                tasks.append(("cross", a, b))
                continue
            if la:
                beg, end = child_beg[b], child_end[b]
                _, cols = p.prune_cross([a], slice(beg, end), eps)
                push_pairs(np.full(len(cols), a, dtype=np.intp), cols, 0, beg)
            elif lb:
                beg, end = child_beg[a], child_end[a]
                rows, _ = p.prune_cross(slice(beg, end), [b], eps)
                push_pairs(rows, np.full(len(rows), b, dtype=np.intp), beg, 0)
            else:
                b1, e1 = child_beg[a], child_end[a]
                b2, e2 = child_beg[b], child_end[b]
                rows, cols = p.prune_cross(slice(b1, e1), slice(b2, e2), eps)
                push_pairs(rows, cols, b1, b2)
        elif tag == _NODE:
            if compact and diam[a] < eps:
                tasks.append(("group", a))
                continue
            if leaf[a]:
                tasks.append(("self", a))
                continue
            beg, end = child_beg[a], child_end[a]
            push((_NPAIRS, a, 0, 0.0))
            for cid in range(end - 1, beg - 1, -1):
                push((_NODE, cid, 0, 0.0))
        else:  # _NPAIRS
            beg, end = child_beg[a], child_end[a]
            rows, cols = p.prune_self(beg, end, eps)
            push_pairs(rows, cols, beg, beg)
    return tasks
