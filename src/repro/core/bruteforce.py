"""Brute-force O(n^2) similarity join — the ground truth for testing.

Blocked NumPy evaluation keeps memory bounded (never more than
``block ** 2`` distances at once) while remaining fast enough to verify
joins on tens of thousands of points.  Strict inequality (``distance <
eps``) matches the pseudo-code of the paper and every algorithm in
:mod:`repro.core`.

For *counting* links on large inputs (the SSJ output-size estimator of the
crashed data points in Figures 5 and 7) use :func:`count_links`, which
relies on SciPy's k-d tree and never materialises the pairs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.spatial import cKDTree

from repro.geometry.metrics import Metric, get_metric

__all__ = ["brute_force_links", "brute_force_cross_links", "count_links"]


def brute_force_links(
    points: np.ndarray,
    eps: float,
    metric: Optional[Metric] = None,
    block: int = 2048,
) -> set[tuple[int, int]]:
    """All pairs ``(i, j)`` with ``i < j`` and ``distance < eps``.

    >>> import numpy as np
    >>> pts = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0]])
    >>> sorted(brute_force_links(pts, 0.2))
    [(0, 1)]
    """
    if eps <= 0:
        raise ValueError(f"query range must be positive, got {eps}")
    m = get_metric(metric)
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    n = len(pts)
    links: set[tuple[int, int]] = set()
    for i0 in range(0, n, block):
        hi_i = min(i0 + block, n)
        for j0 in range(i0, n, block):
            hi_j = min(j0 + block, n)
            dists = m.pairwise(pts[i0:hi_i], pts[j0:hi_j])
            rows, cols = np.nonzero(dists < eps)
            for r, c in zip(rows.tolist(), cols.tolist()):
                i, j = i0 + r, j0 + c
                if i < j:
                    links.add((i, j))
    return links


def brute_force_cross_links(
    points_a: np.ndarray,
    points_b: np.ndarray,
    eps: float,
    metric: Optional[Metric] = None,
    block: int = 2048,
) -> set[tuple[int, int]]:
    """All cross pairs ``(i, j)`` with ``distance(a_i, b_j) < eps``.

    Ground truth for the two-dataset *spatial join* (Section IV-D): only
    pairs with one point from each set qualify, and the returned indices
    are positional within each set.
    """
    if eps <= 0:
        raise ValueError(f"query range must be positive, got {eps}")
    m = get_metric(metric)
    pts_a = np.atleast_2d(np.asarray(points_a, dtype=float))
    pts_b = np.atleast_2d(np.asarray(points_b, dtype=float))
    links: set[tuple[int, int]] = set()
    for i0 in range(0, len(pts_a), block):
        hi_i = min(i0 + block, len(pts_a))
        for j0 in range(0, len(pts_b), block):
            hi_j = min(j0 + block, len(pts_b))
            dists = m.pairwise(pts_a[i0:hi_i], pts_b[j0:hi_j])
            rows, cols = np.nonzero(dists < eps)
            for r, c in zip(rows.tolist(), cols.tolist()):
                links.add((i0 + r, j0 + c))
    return links


def count_links(points: np.ndarray, eps: float, metric: Optional[Metric] = None) -> int:
    """Number of qualifying pairs, computed without materialising them.

    Uses SciPy's ``cKDTree.count_neighbors`` for Minkowski metrics.  The
    k-d tree counts pairs with distance ``<= eps``; pairs at *exactly*
    ``eps`` are subtracted to preserve the library's strict semantics
    (they are found by a second count at an infinitesimally smaller
    radius, exact for the discrete set of realised distances).
    """
    if eps <= 0:
        raise ValueError(f"query range must be positive, got {eps}")
    m = get_metric(metric)
    p_order = {"manhattan": 1.0, "euclidean": 2.0, "chebyshev": np.inf}.get(m.name)
    if p_order is None and m.name.startswith("minkowski-"):
        p_order = float(m.name.split("-", 1)[1])
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    if p_order is None:
        # Generic metric: blocked counting, still without storing pairs.
        total = 0
        block = 2048
        n = len(pts)
        for i0 in range(0, n, block):
            hi_i = min(i0 + block, n)
            for j0 in range(i0, n, block):
                hi_j = min(j0 + block, n)
                dists = m.pairwise(pts[i0:hi_i], pts[j0:hi_j])
                mask = dists < eps
                if i0 == j0:
                    mask = np.triu(mask, k=1)
                total += int(mask.sum())
        return total
    tree = cKDTree(pts)
    # The k-d tree counts pairs with distance <= r, so count at the largest
    # float strictly below eps to realise the library's strict semantics.
    strictly_below = tree.count_neighbors(tree, np.nextafter(eps, 0.0), p=p_order)
    # The count includes self-pairs (n of them) and both orders of each pair.
    return (int(strictly_below) - len(pts)) // 2
