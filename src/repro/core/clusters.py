"""Clustering from compact join output (paper Section IV-D).

"One could ... pass the compact representation to other algorithms for
further savings.  We believe this latter approach of maintaining the
savings is the more interesting."  The classic downstream consumer of a
similarity join is density connectivity: two points belong to the same
cluster when a chain of qualifying links connects them (the connectivity
notion behind DBSCAN-style and graph clustering methods of Section II-B).

This module computes those connected components *directly on the compact
output* — every group is one hyper-edge, so the union-find runs in
O(output size), never expanding the O(n^2) link set.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import JoinResult

__all__ = ["UnionFind", "connected_components", "component_sizes"]


class UnionFind:
    """Weighted quick-union with path compression over ``n`` elements."""

    def __init__(self, n: int):
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self._parent = np.arange(n, dtype=np.intp)
        self._size = np.ones(n, dtype=np.intp)

    def find(self, i: int) -> int:
        """Root of element ``i``'s component (with path compression)."""
        parent = self._parent
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:  # path compression
            parent[i], i = root, parent[i]
        return int(root)

    def union(self, i: int, j: int) -> None:
        """Merge the components of ``i`` and ``j`` (weighted union)."""
        root_i, root_j = self.find(i), self.find(j)
        if root_i == root_j:
            return
        if self._size[root_i] < self._size[root_j]:
            root_i, root_j = root_j, root_i
        self._parent[root_j] = root_i
        self._size[root_i] += self._size[root_j]

    def connected(self, i: int, j: int) -> bool:
        """Whether ``i`` and ``j`` share a component."""
        return self.find(i) == self.find(j)

    def labels(self) -> np.ndarray:
        """Canonical component label per element (the component's root)."""
        return np.array([self.find(i) for i in range(len(self._parent))])


def connected_components(result: JoinResult, n_points: int) -> np.ndarray:
    """Density-connectivity clusters from a (compact) join result.

    Returns a label array of length ``n_points``: points sharing a label
    are connected by a chain of qualifying links.  Works identically for
    compact and standard output — a group of k members contributes the
    same connectivity as its k(k-1)/2 links, via k - 1 union operations.

    Labels are renumbered to 0..k-1 in order of first appearance;
    singleton points (appearing in no link/group) keep their own label.
    """
    uf = UnionFind(n_points)
    for i, j in result.links:
        uf.union(i, j)
    for ids in result.groups:
        first = ids[0]
        for other in ids[1:]:
            uf.union(first, other)
    for ids_a, ids_b in result.group_pairs:
        anchor = ids_a[0] if ids_a else None
        if anchor is None:
            continue
        for other in list(ids_a[1:]) + list(ids_b):
            uf.union(anchor, other)
    roots = uf.labels()
    # Renumber to compact consecutive labels.
    remap: dict[int, int] = {}
    labels = np.empty(n_points, dtype=np.intp)
    for i, root in enumerate(roots):
        if root not in remap:
            remap[root] = len(remap)
        labels[i] = remap[root]
    return labels


def component_sizes(labels: np.ndarray) -> np.ndarray:
    """Size of each component, indexed by label."""
    return np.bincount(np.asarray(labels, dtype=np.intp))
