"""Group bookkeeping for the compact similarity joins.

A *group* is a set of point ids bounded by a minimum bounding
hyper-rectangle whose maximal diagonal is strictly below the query range,
which guarantees that all members mutually satisfy the range (Section V-A
of the paper).  :class:`GroupBuffer` implements the ``g``-most-recent-group
window and the ``mergeIntoPrevGroup`` routine of CSJ(g) (Figure 3,
lines 42-50): a new link is offered to the recent groups, newest first; a
group absorbs it iff extending the group's MBR to cover both endpoints
keeps the diagonal below the range; otherwise a new group holding just the
link is created.

Groups leave the window in FIFO order; on eviction (and on the final
flush) they are written to the sink.  Groups of exactly two members are
written as plain links — the paper's output format does not distinguish
them and the byte cost is identical.

Performance note: this is the per-link hot path of CSJ(g), so group
bounds are kept as plain Python lists and the Euclidean diagonal test is
inlined (``sqrt`` of a scalar squared sum — comparing squares against
``eps**2`` would change strictness on exact-distance ties, since the
square can round up); other metrics go through ``metric.norm_seq``.
NumPy is deliberately absent here — dispatch overhead on 2-3 element
arrays costs more than the arithmetic.
"""

from __future__ import annotations

from collections import deque
from math import sqrt
from typing import Optional, Sequence

from repro.core.results import JoinSink
from repro.errors import ValidationError
from repro.geometry.mbr import MBR
from repro.geometry.metrics import Metric, get_metric
from repro.stats.counters import JoinStats

__all__ = ["Group", "GroupBuffer", "apply_events"]


def apply_events(events, sink: JoinSink, buffer: Optional["GroupBuffer"]) -> None:
    """Replay a task's output events against a sink and group window.

    Events are the serializable output description produced by the pure
    per-task executors (``*_delta`` functions in the algorithm modules):

    * ``("links", ids_i, ids_j)`` — residual links written individually;
    * ``("group", ids, lo, hi)`` — an early-stopped group;
    * ``("linkseq", ids_i, ids_j, coords_i, coords_j)`` — residual links
      routed one by one through the CSJ(g) merge window.

    Because replay performs exactly the sink/window calls the in-place
    algorithms make, applying a task sequence in canonical order is
    byte-identical to executing it in place — the property the parallel
    executor's canonical-order merge relies on.
    """
    for event in events:
        kind = event[0]
        if kind == "links":
            sink.write_links(event[1], event[2])
        elif kind in ("group", "linkseq"):
            if buffer is None:
                raise ValidationError(
                    f"cannot replay a {kind!r} event without a group "
                    "window: these events are produced by CSJ tasks and "
                    "need buffer= (SSJ replay emits only 'links' events)"
                )
            if kind == "group":
                buffer.create_group(event[1], event[2], event[3])
            else:
                add_link = buffer.add_link
                for i, j, p_i, p_j in zip(event[1], event[2], event[3], event[4]):
                    add_link(i, j, p_i, p_j)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown task event kind {kind!r}")


class Group:
    """A mutable in-flight group: member ids plus bounding corners."""

    __slots__ = ("ids", "lo", "hi")

    def __init__(self, ids: set[int], lo: list[float], hi: list[float]):
        self.ids = ids
        self.lo = lo
        self.hi = hi

    @property
    def mbr(self) -> MBR:
        """The group boundary as an :class:`~repro.geometry.mbr.MBR`."""
        return MBR(self.lo, self.hi)

    def __len__(self) -> int:
        return len(self.ids)

    def __repr__(self) -> str:
        return f"Group(size={len(self.ids)}, lo={self.lo}, hi={self.hi})"


class GroupBuffer:
    """The CSJ(g) window of the ``g`` most recently created groups.

    Parameters
    ----------
    g:
        Window length.  ``g = 0`` disables merging entirely: every link is
        written individually and node groups are written immediately,
        which is exactly N-CSJ's behaviour.
    eps:
        The query range; group diagonals must stay strictly below it.
    sink, metric, stats:
        Shared join machinery.  ``stats`` counts merge attempts/successes
        and defaults to the sink's.
    """

    def __init__(
        self,
        g: int,
        eps: float,
        sink: JoinSink,
        metric: Optional[Metric] = None,
        stats: Optional[JoinStats] = None,
        dim: Optional[int] = None,
    ):
        if g < 0:
            raise ValueError(f"window size g must be >= 0, got {g}")
        if eps <= 0:
            raise ValueError(f"query range must be positive, got {eps}")
        self.g = int(g)
        self.eps = float(eps)
        self.sink = sink
        self.metric = get_metric(metric)
        self.stats = stats if stats is not None else sink.stats
        self._window: deque[Group] = deque()
        self._euclidean = self.metric.name == "euclidean"
        # The merge test runs per residual link; for the common 2-D/3-D
        # Euclidean case a fully inlined scalar variant is bound here.
        if self.g > 0 and self._euclidean and dim == 2:
            self.add_link = self._add_link_2d
        elif self.g > 0 and self._euclidean and dim == 3:
            self.add_link = self._add_link_3d

    # ------------------------------------------------------------------
    # Group creation
    # ------------------------------------------------------------------
    def create_group(
        self, ids: Sequence[int], lo: Sequence[float], hi: Sequence[float]
    ) -> Group:
        """createNewGroup: start a group and enter it into the window.

        ``lo``/``hi`` are the group boundary corners (e.g. the early-
        stopped node's MBR).  With ``g = 0`` the group is written through
        immediately.
        """
        group = Group(set(ids), list(lo), list(hi))
        if self.g == 0:
            self._write_out(group)
            return group
        self._window.append(group)
        if len(self._window) > self.g:
            self._write_out(self._window.popleft())
        return group

    def add_link(
        self, i: int, j: int, p_i: Sequence[float], p_j: Sequence[float]
    ) -> None:
        """Route one qualifying link through mergeIntoPrevGroup.

        ``p_i`` / ``p_j`` are plain coordinate sequences.  Tries the
        recent groups newest-first; on failure creates a new group bounded
        by the link's own MBR (whose diagonal equals the pair distance,
        hence always below the range).
        """
        pair_lo = [a if a < b else b for a, b in zip(p_i, p_j)]
        pair_hi = [b if a < b else a for a, b in zip(p_i, p_j)]
        if self.g > 0:
            stats = self.stats
            attempts = 0
            if self._euclidean:
                eps = self.eps
                for group in reversed(self._window):
                    attempts += 1
                    glo, ghi = group.lo, group.hi
                    total = 0.0
                    for k in range(len(glo)):
                        lo = glo[k]
                        hi = ghi[k]
                        a = pair_lo[k]
                        b = pair_hi[k]
                        if a < lo:
                            lo = a
                        if b > hi:
                            hi = b
                        span = hi - lo
                        total += span * span
                    # sqrt before comparing: strictness must agree bit-for-
                    # bit with the canonical metric (eps*eps can round up).
                    if sqrt(total) < eps:
                        self._commit(group, i, j, pair_lo, pair_hi)
                        stats.merge_attempts += attempts
                        stats.mbr_checks += attempts
                        stats.merge_successes += 1
                        return
            else:
                norm_seq = self.metric.norm_seq
                for group in reversed(self._window):
                    attempts += 1
                    spans = [
                        (h if h > b else b) - (l if l < a else a)
                        for l, h, a, b in zip(group.lo, group.hi, pair_lo, pair_hi)
                    ]
                    if norm_seq(spans) < self.eps:
                        self._commit(group, i, j, pair_lo, pair_hi)
                        stats.merge_attempts += attempts
                        stats.mbr_checks += attempts
                        stats.merge_successes += 1
                        return
            stats.merge_attempts += attempts
            stats.mbr_checks += attempts
        self.create_group((i, j), pair_lo, pair_hi)

    def _add_link_2d(self, i: int, j: int, p_i, p_j) -> None:
        """Inlined 2-D Euclidean variant of :meth:`add_link`.

        Identical semantics (same scan order, same strict test); only the
        interpreter overhead differs — this path handles tens of millions
        of residual links in the large-range county experiments.
        """
        x1, y1 = p_i
        x2, y2 = p_j
        if x2 < x1:
            x1, x2 = x2, x1
        if y2 < y1:
            y1, y2 = y2, y1
        eps = self.eps
        attempts = 0
        for group in reversed(self._window):
            attempts += 1
            glo = group.lo
            ghi = group.hi
            lox = glo[0] if glo[0] < x1 else x1
            hix = ghi[0] if ghi[0] > x2 else x2
            loy = glo[1] if glo[1] < y1 else y1
            hiy = ghi[1] if ghi[1] > y2 else y2
            dx = hix - lox
            dy = hiy - loy
            if sqrt(dx * dx + dy * dy) < eps:
                glo[0] = lox
                ghi[0] = hix
                glo[1] = loy
                ghi[1] = hiy
                group.ids.add(i)
                group.ids.add(j)
                stats = self.stats
                stats.merge_attempts += attempts
                stats.mbr_checks += attempts
                stats.merge_successes += 1
                return
        stats = self.stats
        stats.merge_attempts += attempts
        stats.mbr_checks += attempts
        self.create_group((i, j), [x1, y1], [x2, y2])

    def _add_link_3d(self, i: int, j: int, p_i, p_j) -> None:
        """Inlined 3-D Euclidean variant of :meth:`add_link`."""
        x1, y1, z1 = p_i
        x2, y2, z2 = p_j
        if x2 < x1:
            x1, x2 = x2, x1
        if y2 < y1:
            y1, y2 = y2, y1
        if z2 < z1:
            z1, z2 = z2, z1
        eps = self.eps
        attempts = 0
        for group in reversed(self._window):
            attempts += 1
            glo = group.lo
            ghi = group.hi
            lox = glo[0] if glo[0] < x1 else x1
            hix = ghi[0] if ghi[0] > x2 else x2
            loy = glo[1] if glo[1] < y1 else y1
            hiy = ghi[1] if ghi[1] > y2 else y2
            loz = glo[2] if glo[2] < z1 else z1
            hiz = ghi[2] if ghi[2] > z2 else z2
            dx = hix - lox
            dy = hiy - loy
            dz = hiz - loz
            if sqrt(dx * dx + dy * dy + dz * dz) < eps:
                glo[0] = lox
                ghi[0] = hix
                glo[1] = loy
                ghi[1] = hiy
                glo[2] = loz
                ghi[2] = hiz
                group.ids.add(i)
                group.ids.add(j)
                stats = self.stats
                stats.merge_attempts += attempts
                stats.mbr_checks += attempts
                stats.merge_successes += 1
                return
        stats = self.stats
        stats.merge_attempts += attempts
        stats.mbr_checks += attempts
        self.create_group((i, j), [x1, y1, z1], [x2, y2, z2])

    @staticmethod
    def _commit(
        group: Group,
        i: int,
        j: int,
        pair_lo: Sequence[float],
        pair_hi: Sequence[float],
    ) -> None:
        glo, ghi = group.lo, group.hi
        for k in range(len(glo)):
            if pair_lo[k] < glo[k]:
                glo[k] = pair_lo[k]
            if pair_hi[k] > ghi[k]:
                ghi[k] = pair_hi[k]
        group.ids.add(i)
        group.ids.add(j)

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def _write_out(self, group: Group) -> None:
        if len(group.ids) == 2:
            i, j = group.ids
            self.sink.write_link(i, j)
        elif len(group.ids) > 2:
            self.sink.write_group(sorted(group.ids))

    def flush(self) -> None:
        """Write every group still in the window (end of the join)."""
        while self._window:
            self._write_out(self._window.popleft())

    def __len__(self) -> int:
        return len(self._window)
