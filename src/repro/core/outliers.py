"""Outlier mining on compact join output (Sections I and IV-D).

The paper motivates the compact representation as "a type of pre-sort" for
outlier detection: points that only ever appear in *small* groups are far
from any dense region, while members of large groups are deeply embedded
in one.  This module implements that analysis:

* :func:`group_size_profile` — for every point, the largest group (or
  link) it appears in;
* :func:`find_outliers` — points whose largest membership stays below a
  threshold, including points appearing in *no* group (isolated beyond the
  query range from everything);
* :func:`rank_by_isolation` — all points ordered most-isolated first.

Scores are computed directly on the compact output, never expanding it —
which is the whole point: the analysis runs on O(output) memory even when
the link set would have exploded.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import JoinResult

__all__ = ["group_size_profile", "find_outliers", "rank_by_isolation"]


def group_size_profile(result: JoinResult, n_points: int) -> np.ndarray:
    """Largest output membership per point id.

    Returns an array ``profile`` of length ``n_points``: ``profile[i]`` is
    the size of the largest group containing ``i`` (links count as size-2
    groups); ``0`` means the point appears in no output line at all.
    """
    if n_points < 0:
        raise ValueError("n_points must be non-negative")
    profile = np.zeros(n_points, dtype=np.int64)
    for i, j in result.links:
        profile[i] = max(profile[i], 2)
        profile[j] = max(profile[j], 2)
    for ids in result.groups:
        size = len(ids)
        for i in ids:
            profile[i] = max(profile[i], size)
    for ids_a, ids_b in result.group_pairs:
        size = len(ids_a) + len(ids_b)
        for i in ids_a:
            profile[i] = max(profile[i], size)
        for j in ids_b:
            profile[j] = max(profile[j], size)
    return profile


def find_outliers(
    result: JoinResult,
    n_points: int,
    max_group_size: int = 2,
    include_isolated: bool = True,
) -> np.ndarray:
    """Point ids whose largest membership is at most ``max_group_size``.

    ``include_isolated=False`` drops points that never appear in the
    output (useful when isolation is already known from other filters).
    """
    profile = group_size_profile(result, n_points)
    mask = profile <= max_group_size
    if not include_isolated:
        mask &= profile > 0
    return np.nonzero(mask)[0]


def rank_by_isolation(result: JoinResult, n_points: int) -> np.ndarray:
    """All point ids ordered most isolated first.

    The primary key is the largest membership (ascending: the emptier a
    point's neighbourhood, the earlier it ranks); ties keep id order for
    determinism.
    """
    profile = group_size_profile(result, n_points)
    return np.argsort(profile, kind="stable")
