"""Compact similarity joins for general metric spaces (Section VII).

The paper's Discussion argues the algorithms "are equally applicable to
metric space, and the gains carry over", because they only require the
inclusion property and node-distance bounds.  For *vector* data our CSJ
already runs on the M-tree; this module completes the claim for data with
no coordinates at all — strings under edit distance, or any user metric:

* :class:`ObjectMetric` adapts a ``distance(a, b)`` callable over
  arbitrary objects to the library's :class:`~repro.geometry.metrics.Metric`
  interface by indexing: each "point" is its object id, so every existing
  index and traversal works unchanged;
* :class:`BallGroupBuffer` replaces the MBR group boundary with a metric
  *ball* (center object + radius): all members mutually satisfy the range
  whenever ``2 * radius < eps`` — the constant-time membership test of
  Section V-A, minus the vector-space assumption;
* :func:`metric_csj` runs N-CSJ / CSJ(g) over an M-tree of objects with
  ball groups, and :func:`metric_similarity_join` is the one-call API.

Ball groups are more conservative than MBRs (a ball of diameter < eps is
the largest shape with a one-distance membership test), so compaction
rates are lower than in the vector case — the trade-off the paper
discusses when rejecting bounding circles for vectors.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.results import CollectSink, JoinResult, JoinSink
from repro.geometry.metrics import Metric
from repro.index.mtree import MTree
from repro.io.writer import width_for
from repro.stats.counters import JoinStats

__all__ = [
    "ObjectMetric",
    "BallGroupBuffer",
    "build_metric_index",
    "metric_csj",
    "metric_similarity_join",
    "brute_force_object_links",
]


class ObjectMetric(Metric):
    """Adapts ``distance(a, b)`` over arbitrary objects to the Metric API.

    Points handed to the index are 1-D "coordinates" holding object ids;
    every distance evaluation dereferences the ids and calls the user
    function.  ``norm_rows`` is undefined — object metrics are not
    translation invariant — so any code path assuming vector geometry
    fails loudly instead of silently producing nonsense.
    """

    def __init__(self, objects: Sequence, distance_fn: Callable, name: str = "object"):
        self.objects = list(objects)
        self._fn = distance_fn
        self.name = f"object-{name}"

    def norm_rows(self, diffs: np.ndarray) -> np.ndarray:
        raise TypeError(
            "object metrics have no vector norm; only distance() and the "
            "pairwise helpers are defined"
        )

    def _resolve(self, coord) -> object:
        return self.objects[int(round(float(np.asarray(coord).ravel()[0])))]

    def distance(self, a, b) -> float:
        return float(self._fn(self._resolve(a), self._resolve(b)))

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        rows_a = np.atleast_2d(np.asarray(a, dtype=float))
        rows_b = np.atleast_2d(np.asarray(b, dtype=float))
        out = np.empty((len(rows_a), len(rows_b)))
        objs_a = [self._resolve(r) for r in rows_a]
        objs_b = [self._resolve(r) for r in rows_b]
        for i, oa in enumerate(objs_a):
            for j, ob in enumerate(objs_b):
                out[i, j] = self._fn(oa, ob)
        return out

    def self_pairwise(self, a: np.ndarray) -> np.ndarray:
        return self.pairwise(a, a)

    def condensed_self(self, a: np.ndarray):
        # The vector-space base implementation needs norm_rows; evaluate
        # the user function per upper-triangle pair instead.
        from repro.geometry.metrics import triu_pair_indices

        rows_a = np.atleast_2d(np.asarray(a, dtype=float))
        rows, cols = triu_pair_indices(len(rows_a))
        objs = [self._resolve(r) for r in rows_a]
        dists = np.fromiter(
            (self._fn(objs[r], objs[c]) for r, c in zip(rows.tolist(), cols.tolist())),
            dtype=float,
            count=len(rows),
        )
        return rows, cols, dists

    def point_to_points(self, p, pts: np.ndarray) -> np.ndarray:
        rows = np.atleast_2d(np.asarray(pts, dtype=float))
        target = self._resolve(p)
        return np.array([self._fn(target, self._resolve(r)) for r in rows])


def build_metric_index(
    objects: Sequence,
    distance_fn: Callable,
    max_entries: int = 16,
    name: str = "custom",
    shuffle_seed: Optional[int] = None,
) -> MTree:
    """Build an M-tree over arbitrary objects with a user metric."""
    metric = ObjectMetric(objects, distance_fn, name=name)
    ids = np.arange(len(objects), dtype=float).reshape(-1, 1)
    return MTree(ids, metric=metric, max_entries=max_entries, shuffle_seed=shuffle_seed)


class _BallGroup:
    """An in-flight metric-space group: member ids + covering ball."""

    __slots__ = ("ids", "center", "radius")

    def __init__(self, ids: set[int], center: object, radius: float):
        self.ids = ids
        self.center = center
        self.radius = radius


class BallGroupBuffer:
    """The g-recent-group window with ball-bounded groups.

    A group is valid when ``2 * radius < eps`` *or* when it was created
    from an early-stopped node/node pair whose union diameter bound was
    below the range (such groups may carry a looser descriptive radius;
    links only merge in when the strict ball test passes).
    """

    def __init__(
        self,
        g: int,
        eps: float,
        sink: JoinSink,
        distance_fn: Callable,
        stats: Optional[JoinStats] = None,
    ):
        if g < 0:
            raise ValueError(f"window size g must be >= 0, got {g}")
        if eps <= 0:
            raise ValueError(f"query range must be positive, got {eps}")
        self.g = int(g)
        self.eps = float(eps)
        self.sink = sink
        self._fn = distance_fn
        self.stats = stats if stats is not None else sink.stats
        self._window: deque[_BallGroup] = deque()

    def create_group(
        self, ids: Sequence[int], center: object, radius: float, mergeable: bool = True
    ) -> None:
        group = _BallGroup(set(int(i) for i in ids), center, float(radius))
        if self.g == 0 or not mergeable:
            # Non-mergeable groups (loose radius) are written through.
            self._write_out(group)
            return
        self._window.append(group)
        if len(self._window) > self.g:
            self._write_out(self._window.popleft())

    def add_link(self, i: int, j: int, obj_i: object, obj_j: object) -> None:
        """mergeIntoPrevGroup with the ball membership test."""
        if self.g > 0:
            half = self.eps / 2.0
            for group in reversed(self._window):
                self.stats.merge_attempts += 1
                d_i = self._fn(group.center, obj_i)
                d_j = self._fn(group.center, obj_j)
                self.stats.distance_computations += 2
                new_radius = max(group.radius, d_i, d_j)
                if new_radius < half:
                    group.radius = new_radius
                    group.ids.add(int(i))
                    group.ids.add(int(j))
                    self.stats.merge_successes += 1
                    return
            d = self._fn(obj_i, obj_j)
            self.stats.distance_computations += 1
            if 2.0 * d < self.eps:
                # The link itself seeds a valid mergeable ball.
                self.create_group((i, j), obj_i, d)
                return
        self.sink.write_link(int(i), int(j))

    def _write_out(self, group: _BallGroup) -> None:
        if len(group.ids) == 2:
            i, j = group.ids
            self.sink.write_link(i, j)
        elif len(group.ids) > 2:
            self.sink.write_group(sorted(group.ids))

    def flush(self) -> None:
        while self._window:
            self._write_out(self._window.popleft())


def metric_csj(
    tree: MTree,
    eps: float,
    g: int = 10,
    sink: Optional[JoinSink] = None,
) -> JoinResult:
    """Compact similarity join over an object M-tree with ball groups.

    ``g = 0`` gives the naive variant (early stopping only).  The tree
    must have been built by :func:`build_metric_index` (its metric must be
    an :class:`ObjectMetric`).
    """
    if eps <= 0:
        raise ValueError(f"query range must be positive, got {eps}")
    metric = tree.metric
    if not isinstance(metric, ObjectMetric):
        raise TypeError(
            "metric_csj needs an ObjectMetric tree; for vector data use "
            "repro.core.csj.csj, which produces tighter MBR groups"
        )
    if sink is None:
        sink = CollectSink(id_width=width_for(tree.size))
    objects = metric.objects
    fn = metric._fn
    stats = sink.stats
    buffer = BallGroupBuffer(g, eps, sink, fn, stats=stats)

    def object_of(node) -> object:
        return objects[int(round(float(tree.points[node.router, 0])))]

    def leaf_ids(node) -> list[int]:
        return [int(round(float(tree.points[pid, 0]))) for pid in node.entry_ids]

    def emit_node_group(node) -> None:
        stats.early_stops += 1
        ids = [int(round(float(tree.points[pid, 0]))) for pid in node.subtree_ids()]
        if len(ids) >= 2:
            buffer.create_group(
                ids, object_of(node), node.radius, mergeable=2 * node.radius < eps
            )

    def emit_pair_group(n1, n2) -> None:
        stats.early_stops += 1
        ids = [
            int(round(float(tree.points[pid, 0])))
            for pid in np.concatenate([n1.subtree_ids(), n2.subtree_ids()])
        ]
        if len(ids) < 2:
            return
        d = fn(object_of(n1), object_of(n2))
        stats.distance_computations += 1
        radius = max(n1.radius, d + n2.radius)
        buffer.create_group(
            ids, object_of(n1), radius, mergeable=2 * radius < eps
        )

    def leaf_self(node) -> None:
        ids = leaf_ids(node)
        k = len(ids)
        if k < 2:
            return
        objs = [objects[i] for i in ids]
        stats.distance_computations += k * (k - 1) // 2
        for a in range(k):
            for b in range(a + 1, k):
                if fn(objs[a], objs[b]) < eps:
                    buffer.add_link(ids[a], ids[b], objs[a], objs[b])

    def leaf_cross(n1, n2) -> None:
        ids1, ids2 = leaf_ids(n1), leaf_ids(n2)
        objs1 = [objects[i] for i in ids1]
        objs2 = [objects[i] for i in ids2]
        stats.distance_computations += len(ids1) * len(ids2)
        for a, oa in zip(ids1, objs1):
            for b, ob in zip(ids2, objs2):
                if fn(oa, ob) < eps:
                    buffer.add_link(a, b, oa, ob)

    def join_node(node) -> None:
        stats.nodes_visited += 1
        stats.mbr_checks += 1
        if node.diameter(metric) < eps:
            emit_node_group(node)
            return
        if node.is_leaf:
            leaf_self(node)
            return
        children = node.children
        for child in children:
            join_node(child)
        for a in range(len(children)):
            for b in range(a + 1, len(children)):
                stats.mbr_checks += 1
                if children[a].min_dist(children[b], metric) < eps:
                    join_pair(children[a], children[b])

    def join_pair(n1, n2) -> None:
        stats.node_pairs_visited += 1
        stats.mbr_checks += 1
        if n1.union_diameter(n2, metric) < eps:
            emit_pair_group(n1, n2)
            return
        if n1.is_leaf and n2.is_leaf:
            leaf_cross(n1, n2)
            return
        if n1.is_leaf:
            n1, n2 = n2, n1
        for child in n1.children:
            stats.mbr_checks += 1
            if child.min_dist(n2, metric) < eps:
                join_pair(child, n2)

    start = time.perf_counter()
    if tree.root is not None and tree.size > 1:
        join_node(tree.root)
    buffer.flush()
    stats.compute_time += time.perf_counter() - start - stats.write_time
    label = f"metric-csj({g})" if g else "metric-ncsj"
    return JoinResult.from_sink(sink, eps=eps, algorithm=label, g=g, index_name="mtree")


def metric_similarity_join(
    objects: Sequence,
    eps: float,
    distance_fn: Callable,
    g: int = 10,
    max_entries: int = 16,
    sink: Optional[JoinSink] = None,
    name: str = "custom",
) -> JoinResult:
    """One-call compact similarity join over arbitrary metric objects.

    >>> words = ["cat", "bat", "hat", "zzzzzz"]
    >>> def ham(a, b):
    ...     return sum(x != y for x, y in zip(a, b)) + abs(len(a) - len(b))
    >>> result = metric_similarity_join(words, eps=2, distance_fn=ham)
    >>> sorted(result.expanded_links())
    [(0, 1), (0, 2), (1, 2)]
    """
    tree = build_metric_index(objects, distance_fn, max_entries=max_entries, name=name)
    return metric_csj(tree, eps, g=g, sink=sink)


def brute_force_object_links(
    objects: Sequence, eps: float, distance_fn: Callable
) -> set[tuple[int, int]]:
    """O(n^2) ground truth for object metric joins (strict ``< eps``)."""
    n = len(objects)
    links = set()
    for i in range(n):
        for j in range(i + 1, n):
            if distance_fn(objects[i], objects[j]) < eps:
                links.add((i, j))
    return links
