"""Join result model: links, groups, and output sinks.

A similarity-join result is a stream of

* **links** — individual qualifying pairs ``(i, j)``, and (for the compact
  algorithms) **groups** — id sets whose members *mutually* satisfy the
  query range, each group of ``k`` points standing for all ``k(k-1)/2``
  links;
* for spatial (two-dataset) joins, **group pairs** ``(A, B)`` standing for
  all cross links ``A x B``.

Algorithms emit into a :class:`JoinSink`.  Every sink maintains the
paper's space metric — bytes of the fixed-width output text file — through
:func:`repro.io.writer.line_bytes`, and charges its writing time to
``stats.write_time`` so Experiment 3's computation/write split is
measurable with any sink.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.io.writer import FixedWidthWriter, line_bytes, read_output
from repro.stats.counters import JoinStats

__all__ = [
    "JoinSink",
    "CollectSink",
    "CountingSink",
    "CallbackSink",
    "TextSink",
    "JoinResult",
    "normalized_link",
]


def normalized_link(i: int, j: int) -> tuple[int, int]:
    """Canonical (smaller-id-first) form of a link."""
    return (i, j) if i < j else (j, i)


class JoinSink:
    """Base sink: byte/time accounting plus no-op storage.

    Subclasses override the ``_store_*`` hooks; accounting and counter
    updates are shared so every algorithm/sink combination reports
    comparable numbers.
    """

    #: Set by sinks whose storage is real I/O worth timing per call
    #: (TextSink).  Memory sinks skip the clock: two ``perf_counter``
    #: calls per link would dominate the very quantity being measured.
    timed = False

    def __init__(self, stats: Optional[JoinStats] = None, id_width: int = 8):
        self.stats = stats if stats is not None else JoinStats()
        self.id_width = id_width
        self._link_bytes = line_bytes(2, id_width)

    # -- public API used by the algorithms ---------------------------------
    def write_link(self, i: int, j: int) -> None:
        if i > j:
            i, j = j, i
        if self.timed:
            start = time.perf_counter()
            self._store_link(i, j)
            self.stats.write_time += time.perf_counter() - start
        else:
            self._store_link(i, j)
        self.stats.links_emitted += 1
        self.stats.bytes_written += self._link_bytes

    def write_links(self, ids_i: Sequence[int], ids_j: Sequence[int]) -> None:
        """Batch form of :meth:`write_link` for vectorised leaf output.

        SSJ and N-CSJ emit whole leaf-pair batches at once; subclasses
        override this to avoid per-link Python overhead where their
        storage allows it.
        """
        for i, j in zip(ids_i, ids_j):
            self.write_link(i, j)

    def write_link_raw(self, i: int, j: int) -> None:
        """Write a link *without* id normalisation.

        Spatial joins use positional ids into two different relations, so
        swapping them would change the meaning; self-joins should use
        :meth:`write_link` instead.
        """
        if self.timed:
            start = time.perf_counter()
            self._store_link(int(i), int(j))
            self.stats.write_time += time.perf_counter() - start
        else:
            self._store_link(int(i), int(j))
        self.stats.links_emitted += 1
        self.stats.bytes_written += self._link_bytes

    def write_group(self, ids: Sequence[int]) -> None:
        ids = sorted(int(i) for i in ids)
        if len(ids) < 2:
            return
        if self.timed:
            start = time.perf_counter()
            self._store_group(tuple(ids))
            self.stats.write_time += time.perf_counter() - start
        else:
            self._store_group(tuple(ids))
        self.stats.groups_emitted += 1
        self.stats.group_members_emitted += len(ids)
        self.stats.bytes_written += line_bytes(len(ids), self.id_width)

    def write_group_pair(self, ids_a: Sequence[int], ids_b: Sequence[int]) -> None:
        ids_a = tuple(sorted(int(i) for i in ids_a))
        ids_b = tuple(sorted(int(i) for i in ids_b))
        if not ids_a or not ids_b:
            return
        if self.timed:
            start = time.perf_counter()
            self._store_group_pair(ids_a, ids_b)
            self.stats.write_time += time.perf_counter() - start
        else:
            self._store_group_pair(ids_a, ids_b)
        self.stats.groups_emitted += 1
        self.stats.group_members_emitted += len(ids_a) + len(ids_b)
        # One line: both sides plus the " | " separator (3 bytes, of which
        # 2 are extra over the usual single separator).
        self.stats.bytes_written += (
            line_bytes(len(ids_a) + len(ids_b), self.id_width) + 2
        )

    def close(self) -> None:
        """Release resources; further writes are undefined."""

    # -- storage hooks -------------------------------------------------------
    def _store_link(self, i: int, j: int) -> None:
        pass

    def _store_group(self, ids: tuple[int, ...]) -> None:
        pass

    def _store_group_pair(self, ids_a: tuple[int, ...], ids_b: tuple[int, ...]) -> None:
        pass

    def __enter__(self) -> "JoinSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class CountingSink(JoinSink):
    """Accounts sizes and counts but stores nothing.

    The right sink for large benchmark runs, where materialising an
    exploding output would itself distort the measurement.
    """

    def write_links(self, ids_i: Sequence[int], ids_j: Sequence[int]) -> None:
        k = len(ids_i)
        self.stats.links_emitted += k
        self.stats.bytes_written += k * self._link_bytes


class CollectSink(JoinSink):
    """Stores links, groups and group pairs in memory."""

    def __init__(self, stats: Optional[JoinStats] = None, id_width: int = 8):
        super().__init__(stats, id_width)
        self.links: list[tuple[int, int]] = []
        self.groups: list[tuple[int, ...]] = []
        self.group_pairs: list[tuple[tuple[int, ...], tuple[int, ...]]] = []

    def _store_link(self, i: int, j: int) -> None:
        self.links.append((i, j))

    def write_links(self, ids_i: Sequence[int], ids_j: Sequence[int]) -> None:
        arr_i = np.asarray(ids_i)
        arr_j = np.asarray(ids_j)
        lo = np.minimum(arr_i, arr_j)
        hi = np.maximum(arr_i, arr_j)
        pairs = list(zip(lo.tolist(), hi.tolist()))
        self.links.extend(pairs)
        self.stats.links_emitted += len(pairs)
        self.stats.bytes_written += len(pairs) * self._link_bytes

    def _store_group(self, ids: tuple[int, ...]) -> None:
        self.groups.append(ids)

    def _store_group_pair(self, ids_a: tuple[int, ...], ids_b: tuple[int, ...]) -> None:
        self.group_pairs.append((ids_a, ids_b))


class CallbackSink(JoinSink):
    """Streams output events to user callbacks as the join produces them.

    The hook for pipelines that must not buffer the (possibly huge)
    result: insert links into a database, update an aggregation, forward
    groups over a socket.  Each callback is optional; byte accounting and
    counters behave like every other sink, so measurements stay
    comparable.

    >>> seen = []
    >>> sink = CallbackSink(on_link=lambda i, j: seen.append((i, j)))
    >>> sink.write_link(2, 1)
    >>> seen
    [(1, 2)]
    """

    def __init__(
        self,
        on_link=None,
        on_group=None,
        on_group_pair=None,
        stats: Optional[JoinStats] = None,
        id_width: int = 8,
    ):
        super().__init__(stats, id_width)
        self._on_link = on_link
        self._on_group = on_group
        self._on_group_pair = on_group_pair

    def _store_link(self, i: int, j: int) -> None:
        if self._on_link is not None:
            self._on_link(i, j)

    def _store_group(self, ids: tuple[int, ...]) -> None:
        if self._on_group is not None:
            self._on_group(ids)

    def _store_group_pair(self, ids_a: tuple[int, ...], ids_b: tuple[int, ...]) -> None:
        if self._on_group_pair is not None:
            self._on_group_pair(ids_a, ids_b)


class TextSink(JoinSink):
    """Writes the paper's fixed-width text format to a real file.

    ``stats.bytes_written`` matches the on-disk file size exactly, and
    ``stats.write_time`` measures real output I/O — this is the sink used
    to reproduce Experiment 3 (computation vs. disk-write time).
    """

    timed = True

    def __init__(self, target, stats: Optional[JoinStats] = None, id_width: int = 8):
        super().__init__(stats, id_width)
        self._writer = FixedWidthWriter(target, width=id_width)
        #: Destination path (``None`` when writing to an open stream).
        self.path = self._writer.path

    def _store_link(self, i: int, j: int) -> None:
        self._writer.write_link(i, j)

    def write_links(self, ids_i: Sequence[int], ids_j: Sequence[int]) -> None:
        lo = np.minimum(ids_i, ids_j)
        hi = np.maximum(ids_i, ids_j)
        start = time.perf_counter()
        self._writer.write_links(lo.tolist(), hi.tolist())
        self.stats.write_time += time.perf_counter() - start
        k = len(lo)
        self.stats.links_emitted += k
        self.stats.bytes_written += k * self._link_bytes

    def _store_group(self, ids: tuple[int, ...]) -> None:
        self._writer.write_group(ids)

    def _store_group_pair(self, ids_a: tuple[int, ...], ids_b: tuple[int, ...]) -> None:
        self._writer.write_group_pair(ids_a, ids_b)

    def close(self) -> None:
        self._writer.close()


@dataclass
class JoinResult:
    """The outcome of one join run: output plus measurements.

    ``links``/``groups``/``group_pairs`` are populated when the run used a
    collecting sink; with :class:`CountingSink` only :attr:`stats` carries
    information.
    """

    eps: float
    algorithm: str
    links: list[tuple[int, int]] = field(default_factory=list)
    groups: list[tuple[int, ...]] = field(default_factory=list)
    group_pairs: list[tuple[tuple[int, ...], tuple[int, ...]]] = field(
        default_factory=list
    )
    stats: JoinStats = field(default_factory=JoinStats)
    g: Optional[int] = None
    index_name: Optional[str] = None
    #: True when the run was replaced by the analytic estimator (the
    #: paper's crash protocol): counters are predictions, not measurements.
    estimated: bool = False
    #: True when the serving layer browned this request out: the answer
    #: is the analytic estimate (``estimated`` is then also True), served
    #: because the request ran over its deadline/byte budget or the
    #: admission queue was under pressure.  A degraded result carries no
    #: exact links or groups; resubmit under a larger budget for them.
    degraded: bool = False
    #: True when this result was served from the result cache for an
    #: *earlier* dataset state (the fingerprint no longer matches): the
    #: payload is exact for that state, merely not current.  Only the
    #: serving layer's brownout path sets this.
    stale: bool = False
    #: Path of the output text file when the run used a file sink; lets
    #: :meth:`expanded_links` verify file-backed runs too.
    output_path: Optional[str] = None
    #: Shard-plan summary for sharded runs (``None`` otherwise): shard
    #: count, partitioner, halo replication, skew ratio, and the
    #: K-dependent phase-1 work charges under ``"work"``.  Kept separate
    #: from :attr:`stats`, whose counters are canonical — identical for
    #: every shard count, partitioner and worker count.
    shard_report: Optional[dict] = None

    @classmethod
    def from_sink(
        cls,
        sink: JoinSink,
        eps: float,
        algorithm: str,
        g: Optional[int] = None,
        index_name: Optional[str] = None,
    ) -> "JoinResult":
        """Assemble a result from a finished sink (payload if collecting)."""
        result = cls(
            eps=eps, algorithm=algorithm, g=g, index_name=index_name, stats=sink.stats
        )
        if isinstance(sink, CollectSink):
            result.links = sink.links
            result.groups = sink.groups
            result.group_pairs = sink.group_pairs
        else:
            result.output_path = getattr(sink, "path", None)
        return result

    # -- derived quantities ---------------------------------------------------
    @property
    def output_bytes(self) -> int:
        """The paper's space metric: bytes of the output text file."""
        return self.stats.bytes_written

    def expanded_links(self) -> set[tuple[int, int]]:
        """All links the output *implies* (Theorems 1 and 2).

        Explicit links, every pair within each group, and every cross pair
        of each group pair, as canonical ``(min, max)`` tuples.  A run
        that streamed to a file sink carries no in-memory payload; its
        output file (:attr:`output_path`) is parsed instead.
        """
        links, groups, group_pairs = self.links, self.groups, self.group_pairs
        if (
            not (links or groups or group_pairs)
            and self.output_path is not None
            and os.path.exists(self.output_path)
        ):
            links, groups, group_pairs = read_output(self.output_path)
        expanded: set[tuple[int, int]] = set(
            normalized_link(i, j) for i, j in links
        )
        for ids in groups:
            for a in range(len(ids)):
                for b in range(a + 1, len(ids)):
                    expanded.add(normalized_link(ids[a], ids[b]))
        for ids_a, ids_b in group_pairs:
            for a in ids_a:
                for b in ids_b:
                    if a != b:
                        expanded.add(normalized_link(a, b))
        return expanded

    def expanded_cross_links(self) -> set[tuple[int, int]]:
        """All cross links implied by a *spatial join* output.

        Unlike :meth:`expanded_links`, ids are positional in two different
        relations, so ``(i, j)`` is kept ordered: left dataset first.
        """
        expanded: set[tuple[int, int]] = set((i, j) for i, j in self.links)
        for ids_a, ids_b in self.group_pairs:
            for a in ids_a:
                for b in ids_b:
                    expanded.add((a, b))
        return expanded

    def implied_link_count(self) -> int:
        """Size of :meth:`expanded_links` without materialising it twice."""
        return len(self.expanded_links())

    def summary(self) -> dict[str, Union[int, float, str, None]]:
        """Flat dictionary for experiment tables."""
        return {
            "algorithm": self.algorithm,
            "g": self.g,
            "index": self.index_name,
            "eps": self.eps,
            "links": self.stats.links_emitted,
            "groups": self.stats.groups_emitted,
            "output_bytes": self.stats.bytes_written,
            "distance_computations": self.stats.distance_computations,
            "early_stops": self.stats.early_stops,
            "compute_time": self.stats.compute_time,
            "write_time": self.stats.write_time,
            "total_time": self.stats.total_time,
            "estimated": self.estimated,
            "degraded": self.degraded,
            "stale": self.stale,
        }

    def __repr__(self) -> str:
        return (
            f"JoinResult(algorithm={self.algorithm!r}, eps={self.eps:g}, "
            f"links={self.stats.links_emitted}, groups={self.stats.groups_emitted}, "
            f"bytes={self.stats.bytes_written})"
        )


def make_sink(
    kind: str = "collect",
    stats: Optional[JoinStats] = None,
    id_width: int = 8,
    target=None,
) -> JoinSink:
    """Factory for sinks: ``"collect"``, ``"count"`` or ``"text"``."""
    if kind == "collect":
        return CollectSink(stats, id_width)
    if kind == "count":
        return CountingSink(stats, id_width)
    if kind == "text":
        if target is None:
            raise ValueError("text sink requires a target path or file")
        return TextSink(target, stats, id_width)
    raise ValueError(f"unknown sink kind {kind!r}")
