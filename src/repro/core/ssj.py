"""SSJ — the standard tree-based similarity self-join (Section IV-A).

This is the paper's baseline: the classic recursive R-tree join of
Brinkhoff, Kriegel and Seeger [1], generalised to any index satisfying the
:mod:`repro.index.base` contract.  The tree is descended depth-first; node
pairs are pruned with the minimum-distance lower bound; at the leaves all
qualifying pairs are enumerated *individually* — which is precisely what
triggers the output explosion the compact algorithms fix.

Leaf-level pair checks are vectorised with NumPy (one distance matrix per
leaf or leaf pair), but the logical distance-computation count recorded in
:class:`~repro.stats.counters.JoinStats` matches the scalar algorithm.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.results import CollectSink, JoinResult, JoinSink
from repro.errors import BudgetExceededError
from repro.index.base import IndexNode, SpatialIndex
from repro.io.pagesim import NodePager
from repro.io.writer import width_for
from repro.obs.logging import get_logger
from repro.obs.tracing import span as trace_span
from repro.stats.counters import JoinStats

if TYPE_CHECKING:
    from repro.resilience.budget import Budget

__all__ = ["ssj", "leaf_self_pairs", "leaf_cross_pairs"]

logger = get_logger("core.ssj")


def leaf_self_pairs(
    points: np.ndarray, metric, eps: float, ids
) -> tuple[np.ndarray, np.ndarray, int]:
    """Pure leaf self-join: qualifying pairs of ``ids`` and the distance count.

    Returns ``(ids_i, ids_j, distance_computations)`` without touching any
    sink or counter — the building block shared by the recursive runners,
    the checkpointed driver, and the parallel worker executors.
    """
    id_arr = np.asarray(ids, dtype=np.intp)
    k = len(id_arr)
    if k < 2:
        return id_arr[:0], id_arr[:0], 0
    # Condensed upper-triangle distances: same values and pair order as
    # the full k x k matrix masked with triu, at ~half the peak memory.
    rows, cols, dists = metric.condensed_self(points[id_arr])
    hit = np.flatnonzero(dists < eps)
    return id_arr[rows[hit]], id_arr[cols[hit]], k * (k - 1) // 2


def leaf_cross_pairs(
    points: np.ndarray, metric, eps: float, ids1, ids2
) -> tuple[np.ndarray, np.ndarray, int]:
    """Pure leaf cross-join twin of :func:`leaf_self_pairs`."""
    arr1 = np.asarray(ids1, dtype=np.intp)
    arr2 = np.asarray(ids2, dtype=np.intp)
    if not len(arr1) or not len(arr2):
        return arr1[:0], arr2[:0], 0
    dists = metric.pairwise(points[arr1], points[arr2])
    rows, cols = np.nonzero(dists < eps)
    return arr1[rows], arr2[cols], len(arr1) * len(arr2)


def ssj(
    tree: SpatialIndex,
    eps: float,
    sink: Optional[JoinSink] = None,
    pager: Optional[NodePager] = None,
    budget: Optional["Budget"] = None,
    engine: str = "vectorized",
) -> JoinResult:
    """Run the standard similarity join on ``tree`` with range ``eps``.

    Every qualifying pair is written to ``sink`` as an individual link.
    Returns a :class:`~repro.core.results.JoinResult`; when ``sink`` is
    omitted a collecting sink is used and the result carries the links.

    ``engine`` selects the descent implementation: ``"vectorized"``
    (default) prunes candidate blocks with the batched kernels of
    :mod:`repro.core.frontier`, ``"scalar"`` recurses pair by pair.  The
    two produce byte-identical output and equal counters; trees that
    cannot be packed fall back to scalar automatically.

    ``budget`` bounds the run cooperatively.  An output-byte breach
    *degrades gracefully*: instead of dying mid-explosion (the paper's
    SSJ crashes, Section VI), the run switches to the analytic estimator
    and returns a result flagged ``estimated=True``.  Any other breach
    (deadline, group cap) raises
    :class:`~repro.errors.BudgetExceededError` with the valid partial
    result attached as ``exc.partial``.
    """
    if eps <= 0:
        raise ValueError(f"query range must be positive, got {eps}")
    if sink is None:
        sink = CollectSink(id_width=width_for(tree.size))
    runner = _make_runner(tree, float(eps), sink, pager, budget, engine)
    if budget is not None:
        budget.start()
    start = time.perf_counter()
    try:
        with trace_span("descend", algorithm="ssj", eps=eps):
            if tree.root is not None and tree.size > 1:
                runner.join_node(tree.root)
    except BudgetExceededError as exc:
        elapsed = time.perf_counter() - start
        stats = sink.stats
        stats.compute_time += elapsed - stats.write_time
        logger.warning(
            "ssj budget breach", extra={"kind": exc.kind, "limit": exc.limit}
        )
        if exc.kind == "output_bytes":
            return _estimated_fallback(tree, eps, sink, stats)
        exc.partial = JoinResult.from_sink(
            sink, eps=eps, algorithm="ssj", index_name=type(tree).name
        )
        raise
    elapsed = time.perf_counter() - start
    stats = sink.stats
    stats.compute_time += elapsed - stats.write_time
    if pager is not None:
        stats.page_reads += pager.cache.misses
        stats.cache_hits += pager.cache.hits
    logger.debug(
        "ssj finished",
        extra={
            "links_emitted": stats.links_emitted,
            "bytes_written": stats.bytes_written,
            "distance_computations": stats.distance_computations,
        },
    )
    return JoinResult.from_sink(
        sink, eps=eps, algorithm="ssj", index_name=type(tree).name
    )


def _make_runner(tree, eps, sink, pager, budget, engine) -> "_SSJRunner":
    from repro.core.frontier import _VecSSJRunner, resolve_engine  # lazy: cycle

    if resolve_engine(engine) == "vectorized":
        from repro.index.packed import pack_index

        packed = pack_index(tree)
        if packed is not None:
            return _VecSSJRunner(tree, eps, sink, pager, budget, packed)
    return _SSJRunner(tree, eps, sink, pager, budget)


def _estimated_fallback(tree: SpatialIndex, eps: float, sink: JoinSink, partial_stats):
    """The paper's crash protocol as a first-class mechanism.

    The exact link count is obtained cheaply (dual-tree counting, no pair
    materialisation) and the output size follows from the fixed-width
    format; the returned result carries ``estimated=True`` so tables can
    mark it like the paper's "full, black shapes".
    """
    from repro.experiments.estimate import estimate_ssj  # deferred: no cycle

    estimate = estimate_ssj(tree.points, eps, sink.id_width, metric=tree.metric)
    stats = JoinStats()
    stats.links_emitted = estimate.links
    stats.bytes_written = estimate.output_bytes
    # Keep the honest measurements made before the breach.
    stats.compute_time = partial_stats.compute_time
    stats.write_time = partial_stats.write_time
    stats.distance_computations = partial_stats.distance_computations
    return JoinResult(
        eps=eps,
        algorithm="ssj",
        stats=stats,
        index_name=type(tree).name,
        estimated=True,
    )


class _SSJRunner:
    """Recursive engine for one SSJ execution."""

    def __init__(
        self,
        tree: SpatialIndex,
        eps: float,
        sink: JoinSink,
        pager: Optional[NodePager],
        budget: Optional["Budget"] = None,
    ):
        self.points = tree.points
        self.metric = tree.metric
        self.eps = eps
        self.sink = sink
        self.stats: JoinStats = sink.stats
        self.pager = pager
        self.budget = budget

    # -- simJoin(TreeNode n), Figure 3 lines 1-18 (without the italics) ----
    def join_node(self, node: IndexNode) -> None:
        self.stats.nodes_visited += 1
        if self.budget is not None:
            self.budget.check(self.stats)
        if self.pager is not None:
            self.pager.visit(node)
        if node.is_leaf:
            self._leaf_self(node)
            return
        children = node.children
        for child in children:
            self.join_node(child)
        for a in range(len(children)):
            for b in range(a + 1, len(children)):
                self.stats.mbr_checks += 1
                if children[a].min_dist(children[b], self.metric) < self.eps:
                    self.join_pair(children[a], children[b])

    # -- simJoin(TreeNode n1, n2), Figure 3 lines 19-41 ---------------------
    def join_pair(self, n1: IndexNode, n2: IndexNode) -> None:
        self.stats.node_pairs_visited += 1
        if self.budget is not None:
            self.budget.check(self.stats)
        if self.pager is not None:
            self.pager.visit(n1)
            self.pager.visit(n2)
        if n1.is_leaf and n2.is_leaf:
            self._leaf_cross(n1, n2)
            return
        if n1.is_leaf:
            inner, leaf = n2, n1
            for child in inner.children:
                self.stats.mbr_checks += 1
                if leaf.min_dist(child, self.metric) < self.eps:
                    self.join_pair(leaf, child)
            return
        if n2.is_leaf:
            for child in n1.children:
                self.stats.mbr_checks += 1
                if child.min_dist(n2, self.metric) < self.eps:
                    self.join_pair(child, n2)
            return
        for c1 in n1.children:
            for c2 in n2.children:
                self.stats.mbr_checks += 1
                if c1.min_dist(c2, self.metric) < self.eps:
                    self.join_pair(c1, c2)

    # -- leaf-level pair enumeration ----------------------------------------
    def _leaf_self(self, node: IndexNode) -> None:
        ids_i, ids_j, dc = leaf_self_pairs(
            self.points, self.metric, self.eps, node.entry_ids
        )
        self.stats.distance_computations += dc
        if len(ids_i):
            self.sink.write_links(ids_i, ids_j)

    def _leaf_cross(self, n1: IndexNode, n2: IndexNode) -> None:
        ids_i, ids_j, dc = leaf_cross_pairs(
            self.points, self.metric, self.eps, n1.entry_ids, n2.entry_ids
        )
        self.stats.distance_computations += dc
        if len(ids_i):
            self.sink.write_links(ids_i, ids_j)
