"""Zero-copy shared-memory data plane for the parallel executor.

The pool's historical cost model was "ship everything, rebuild
everywhere": each worker received the full ``points`` array pickled
into its :class:`~repro.parallel.tasks.JoinSpec` and then rebuilt the
entire tree from scratch in ``TaskState``.  This module replaces both
copies with *references*:

* :class:`SharedDataset` — the **owner** of one dataset's shared-memory
  segments.  It publishes ``points`` (and, for packable trees, the
  level-order :class:`~repro.index.packed.PackedIndex` arrays) into
  ``multiprocessing.shared_memory`` once; workers attach by name and
  map the same physical pages.  A spec then crosses the process
  boundary as a ~200-byte :class:`DatasetRef` instead of the dataset.
* :func:`attach_points` / :func:`attach_packed` — the worker side.
  Attachments are cached per ``(process, segment)`` and the dataset
  fingerprint (PR 8's :func:`~repro.dynamic.maintain.dataset_fingerprint`)
  is verified once on first attach, so a stale or recycled segment name
  fails loudly instead of joining the wrong bytes.
* a **warm-state cache** — built ``TaskState`` objects keyed by
  ``(fingerprint, join configuration)``, so respawned workers (and
  repeated service requests against a registered dataset) skip the
  attach→enumerate work entirely and adopt the existing state.

Ownership and lifetime contract
-------------------------------
Exactly one process — the one that created the :class:`SharedDataset` —
owns each segment and is responsible for ``unlink``.  Cleanup is
guaranteed along three independent paths:

1. explicit ``close()`` / ``with`` (the normal path, also called from
   ``parallel_join``'s ``finally`` and ``JoinService.close``);
2. a :func:`weakref.finalize` registered at creation, which Python runs
   at garbage collection *and* at interpreter exit (atexit);
3. the stdlib ``resource_tracker``, which unlinks leaked segments if
   the owner is SIGKILLed before (1) or (2) can run;
4. :func:`sweep_orphan_segments` — segment names embed the creator
   pid, so when even the tracker dies with the owner (SIGKILL of the
   whole process group), the next process to create a segment unlinks
   every segment whose owner no longer exists.

Workers share the owner's tracker process (both ``fork`` and ``spawn``
children inherit its pipe), so a worker attaching — or dying, even by
SIGKILL — never triggers an unlink; the tracker acts only when *every*
process holding the pipe is gone.  For the same reason workers must
**not** call ``resource_tracker.unregister`` on attach: the cache is
shared, so that would silently delete the owner's SIGKILL safety net.
The finalizer also no-ops in forked children (pid guard) so a child
exiting never unlinks its parent's segments.

Fallback rules
--------------
``data_plane="auto"`` resolves to ``"shm"`` when the platform supports
POSIX shared memory and to ``"pickle"`` otherwise; a failed segment
creation under ``"auto"`` falls back to pickling the dataset (counted
in ``repro_shm_fallback_total``) rather than failing the join.
``data_plane="shm"`` is strict and raises instead.  Either way the
task sequence — and therefore the output bytes — is identical across
planes by construction.
"""

from __future__ import annotations

import os
import threading
import uuid
import weakref
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import InvalidInputError, WorkerPoolError, validate_points
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry

__all__ = [
    "DATA_PLANES",
    "SEGMENT_PREFIX",
    "DatasetRef",
    "PackedRef",
    "SharedDataset",
    "attach_packed",
    "attach_points",
    "clear_process_caches",
    "owned_segments",
    "resolve_data_plane",
    "shm_available",
    "sweep_orphan_segments",
    "warm_state_get",
    "warm_state_put",
]

logger = get_logger("parallel.shm")

DATA_PLANES = ("auto", "shm", "pickle")

#: Every segment this library creates carries this name prefix, so leak
#: checks (tests, CI) can scan ``/dev/shm`` without false positives.
SEGMENT_PREFIX = "repro-shm-"


# ----------------------------------------------------------------------
# Plane resolution
# ----------------------------------------------------------------------
_SHM_AVAILABLE: Optional[bool] = None


def shm_available() -> bool:
    """``True`` when POSIX shared memory works in this process (probed once)."""
    global _SHM_AVAILABLE
    if _SHM_AVAILABLE is None:
        try:
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(
                name=f"{SEGMENT_PREFIX}probe-{os.getpid():x}-{uuid.uuid4().hex[:8]}",
                create=True,
                size=1,
            )
            seg.close()
            seg.unlink()
            _SHM_AVAILABLE = True
        except Exception:  # noqa: BLE001 - any failure means "no shm here"
            _SHM_AVAILABLE = False
    return _SHM_AVAILABLE


def resolve_data_plane(value: Optional[str]) -> str:
    """Normalise a ``data_plane`` setting to ``"shm"`` or ``"pickle"``."""
    plane = "auto" if value is None else str(value).lower()
    if plane not in DATA_PLANES:
        raise InvalidInputError(
            f"unknown data_plane {value!r}; known: {DATA_PLANES}"
        )
    if plane == "auto":
        return "shm" if shm_available() else "pickle"
    if plane == "shm" and not shm_available():
        raise InvalidInputError(
            "data_plane='shm' requested but shared memory is unavailable "
            "on this platform; use 'auto' or 'pickle'"
        )
    return plane


# ----------------------------------------------------------------------
# References (what actually crosses the process boundary)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DatasetRef:
    """Name + shape + fingerprint of a published ``points`` segment."""

    segment: str
    dtype: str
    shape: tuple[int, ...]
    fingerprint: str

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape)))


@dataclass(frozen=True)
class PackedRef:
    """Name + layout of a published :class:`PackedIndex` segment.

    ``fields`` maps each packed array name to ``(offset, dtype, shape)``
    within the single segment; the point data itself is *not* here — a
    packed ref is always resolved against an already-attached
    :class:`DatasetRef`.
    """

    segment: str
    kind: str
    fields: tuple[tuple[str, int, str, tuple[int, ...]], ...]
    fingerprint: str


# ----------------------------------------------------------------------
# Owner side
# ----------------------------------------------------------------------
#: Names of segments created (and still owned) by this process.
_OWNED: set[str] = set()
_OWNED_LOCK = threading.Lock()


def owned_segments() -> list[str]:
    """Segments created by this process and not yet unlinked (for tests)."""
    with _OWNED_LOCK:
        return sorted(_OWNED)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by another user
        return True
    return True


def sweep_orphan_segments() -> list[str]:
    """Unlink segments whose creating process no longer exists.

    The last line of defence: when an owner *and* its resource tracker
    are SIGKILLed together (e.g. a whole process group is nuked),
    nothing inside the dead group can unlink.  Segment names embed the
    creator pid, so any process about to create segments sweeps first:
    a name whose pid is gone can never be unlinked by its owner.  Pid
    recycling only makes the check conservative — a live unrelated
    process with the recycled pid just defers the sweep.  Returns the
    names removed.
    """
    root = "/dev/shm"
    removed: list[str] = []
    if not os.path.isdir(root):  # pragma: no cover - non-POSIX-shm platform
        return removed
    try:
        names = os.listdir(root)
    except OSError:  # pragma: no cover
        return removed
    for name in names:
        if not name.startswith(SEGMENT_PREFIX):
            continue
        pid_hex = name[len(SEGMENT_PREFIX):].split("-", 1)[0]
        try:
            pid = int(pid_hex, 16)
        except ValueError:
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(root, name))
            removed.append(name)
        except OSError:  # pragma: no cover - raced with another sweeper
            continue
    if removed:
        logger.warning(
            "swept shared-memory segments orphaned by dead owners",
            extra={"segments": removed},
        )
    return removed


def _create_segment(nbytes: int):
    from multiprocessing import shared_memory

    name = f"{SEGMENT_PREFIX}{os.getpid():x}-{uuid.uuid4().hex[:12]}"
    seg = shared_memory.SharedMemory(name=name, create=True, size=max(1, nbytes))
    with _OWNED_LOCK:
        _OWNED.add(name)
    get_registry().data_plane_event("segment")
    return seg


def _release_segments(segments: list, owner_pid: int) -> None:
    """Finalizer body: close + unlink every segment (owner process only).

    ``segments`` is the live list owned by one :class:`SharedDataset`;
    segments published after the finalizer was registered are covered
    because the *list object* is shared.  The pid guard keeps forked
    children (which inherit the finalizer registry) from unlinking their
    parent's segments on exit.
    """
    if os.getpid() != owner_pid:
        return
    while segments:
        seg = segments.pop()
        with _OWNED_LOCK:
            _OWNED.discard(seg.name)
        try:
            seg.close()
        except OSError:  # pragma: no cover - already closed
            pass
        try:
            seg.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass


#: Sentinel: "use the dataset's registered metric" in :meth:`get_tree`.
_DEFAULT_METRIC = object()


class SharedDataset:
    """Owner of the shared-memory form of one dataset (plus packed trees).

    Create it in the process that will run the pool; pass it (or let
    ``parallel_join`` create an ephemeral one) and the spec ships a
    :class:`DatasetRef` instead of the array.  A context manager —
    leaving the ``with`` block unlinks every segment it created.
    """

    def __init__(
        self,
        points: np.ndarray,
        metric: object = None,
        data_plane: str = "auto",
    ):
        from repro.dynamic.maintain import dataset_fingerprint

        self.points = validate_points(points)
        self.metric = metric
        self.fingerprint = dataset_fingerprint(
            self.points, range(len(self.points))
        )
        self.plane = resolve_data_plane(data_plane)
        self.ref: Optional[DatasetRef] = None
        #: Packed-index publications, keyed by tree configuration.
        self._packed: dict[tuple, tuple[int, PackedRef]] = {}
        #: Built trees for serial / parent-side reuse, same keys.
        self._trees: dict[tuple, object] = {}
        self._segments: list = []
        self._finalizer = weakref.finalize(
            self, _release_segments, self._segments, os.getpid()
        )
        if self.plane == "shm":
            sweep_orphan_segments()
            try:
                self.ref = self._publish_points()
            except OSError as exc:
                if data_plane == "shm":
                    raise WorkerPoolError(
                        f"cannot publish dataset to shared memory: {exc}"
                    ) from exc
                get_registry().data_plane_event("fallback")
                logger.warning(
                    "shared-memory publish failed; falling back to pickle",
                    extra={"error": str(exc)},
                )
                self.plane = "pickle"

    # -- segment publication ------------------------------------------------
    def _publish_points(self) -> DatasetRef:
        pts = np.ascontiguousarray(self.points, dtype=float)
        seg = self._create(pts.nbytes)
        view = np.ndarray(pts.shape, dtype=pts.dtype, buffer=seg.buf)
        view[...] = pts
        ref = DatasetRef(
            segment=seg.name,
            dtype=str(pts.dtype),
            shape=tuple(pts.shape),
            fingerprint=self.fingerprint,
        )
        # The owner's own attach should be free: pre-seed the attach
        # cache with the original array so the parent's TaskState keeps
        # using the memory it already has.
        _seed_attachment(ref, self.points)
        return ref

    def _create(self, nbytes: int):
        seg = _create_segment(nbytes)
        self._segments.append(seg)
        return seg

    def publish_packed(self, key: tuple, packed) -> Optional[PackedRef]:
        """Publish one packed index under ``key``; idempotent per object.

        Re-publishing the *same* ``PackedIndex`` object returns the
        existing ref; a different object under the same key (the tree
        was rebuilt) replaces the publication.
        """
        if self.ref is None:
            return None
        entry = self._packed.get(key)
        if entry is not None and entry[0] == id(packed):
            return entry[1]
        from repro.index.packed import export_packed_arrays

        arrays = export_packed_arrays(packed)
        if arrays is None:
            return None
        fields = []
        offset = 0
        for name, arr in arrays:
            offset = (offset + 63) & ~63  # 64-byte align each block
            fields.append((name, offset, str(arr.dtype), tuple(arr.shape)))
            offset += arr.nbytes
        try:
            seg = self._create(offset)
        except OSError:
            get_registry().data_plane_event("fallback")
            return None
        for (name, beg, dtype, shape), (_, arr) in zip(fields, arrays):
            view = np.ndarray(shape, dtype=dtype, buffer=seg.buf, offset=beg)
            view[...] = arr
        ref = PackedRef(
            segment=seg.name,
            kind=packed.kind,
            fields=tuple(fields),
            fingerprint=self.fingerprint,
        )
        self._packed[key] = (id(packed), ref)
        return ref

    def packed_ref(self, key: tuple) -> Optional[PackedRef]:
        entry = self._packed.get(key)
        return entry[1] if entry is not None else None

    # -- parent-side tree reuse --------------------------------------------
    def get_tree(
        self,
        index: str = "rstar",
        max_entries: int = 64,
        bulk: Optional[str] = "str",
        metric: object = _DEFAULT_METRIC,
    ):
        """Build (once) and cache the tree for one index configuration."""
        if metric is _DEFAULT_METRIC:
            metric = self.metric
        key = (str(index), int(max_entries), bulk, repr(metric))
        tree = self._trees.get(key)
        if tree is None:
            from repro.api import build_index

            tree = build_index(
                self.points,
                index,
                metric=metric,
                max_entries=max_entries,
                bulk=bulk,
            )
            self._trees[key] = tree
        return tree

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Unlink every segment this dataset owns (idempotent)."""
        self._finalizer()

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def __enter__(self) -> "SharedDataset":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedDataset(n={len(self.points)}, plane={self.plane!r}, "
            f"segments={len(self._segments)})"
        )


# ----------------------------------------------------------------------
# Worker side: attach
# ----------------------------------------------------------------------
#: segment name -> (SharedMemory handle | None, {array-key: ndarray})
_ATTACHED: dict[str, tuple[object, dict]] = {}
_ATTACH_LOCK = threading.Lock()


def _seed_attachment(ref: DatasetRef, points: np.ndarray) -> None:
    """Owner-side shortcut: resolve ``ref`` to the original array."""
    with _ATTACH_LOCK:
        _ATTACHED[ref.segment] = (None, {"points": points})


def _open_segment(name: str):
    """Attach to an existing segment by name.

    Attaching re-registers the name with the resource tracker; that is
    an idempotent set-add in the tracker process shared with the owner,
    so it is deliberately left alone — unregistering here would delete
    the owner's registration (shared cache) and with it the SIGKILL
    safety net.
    """
    from multiprocessing import shared_memory

    try:
        seg = shared_memory.SharedMemory(name=name, create=False)
    except (FileNotFoundError, OSError) as exc:
        raise WorkerPoolError(
            f"shared-memory segment {name!r} has vanished (owner gone?): {exc}"
        ) from exc
    return seg


def attach_points(ref: DatasetRef) -> np.ndarray:
    """Map a published ``points`` array; cached per (process, segment).

    The first attach verifies the content fingerprint recorded in the
    ref, so a recycled or corrupted segment fails loudly instead of
    silently joining the wrong dataset.
    """
    with _ATTACH_LOCK:
        entry = _ATTACHED.get(ref.segment)
        if entry is not None and "points" in entry[1]:
            return entry[1]["points"]
    seg = _open_segment(ref.segment)
    arr = np.ndarray(ref.shape, dtype=ref.dtype, buffer=seg.buf)
    from repro.dynamic.maintain import dataset_fingerprint

    actual = dataset_fingerprint(arr, range(len(arr)))
    if actual != ref.fingerprint:
        seg.close()
        raise WorkerPoolError(
            f"shared-memory segment {ref.segment!r} fingerprint mismatch: "
            f"expected {ref.fingerprint[:12]}…, found {actual[:12]}… — "
            "refusing to join against unverified data"
        )
    arr.flags.writeable = False
    with _ATTACH_LOCK:
        _ATTACHED[ref.segment] = (seg, {"points": arr})
    get_registry().data_plane_event("attach")
    return arr


def attach_packed(ref: PackedRef, points: np.ndarray, metric):
    """Materialise a :class:`PackedIndex` over a published segment."""
    with _ATTACH_LOCK:
        entry = _ATTACHED.get(ref.segment)
        if entry is not None and "packed" in entry[1]:
            return entry[1]["packed"]
    seg = _open_segment(ref.segment)
    arrays = {}
    for name, beg, dtype, shape in ref.fields:
        arr = np.ndarray(shape, dtype=dtype, buffer=seg.buf, offset=beg)
        arr.flags.writeable = False
        arrays[name] = arr
    from repro.index.packed import adopt_packed_arrays

    packed = adopt_packed_arrays(ref.kind, points, metric, arrays)
    with _ATTACH_LOCK:
        _ATTACHED[ref.segment] = (seg, {"packed": packed})
    get_registry().data_plane_event("attach")
    return packed


# ----------------------------------------------------------------------
# Warm per-process TaskState cache
# ----------------------------------------------------------------------
_WARM: dict[tuple, object] = {}
_WARM_ORDER: list[tuple] = []
_WARM_LOCK = threading.Lock()
_WARM_LIMIT = 8


def warm_state_get(key: tuple):
    """Fetch a previously built ``TaskState`` for this exact join config."""
    with _WARM_LOCK:
        state = _WARM.get(key)
        if state is not None:
            _WARM_ORDER.remove(key)
            _WARM_ORDER.append(key)
            get_registry().data_plane_event("warm_hit")
        return state


def warm_state_put(key: tuple, state) -> None:
    with _WARM_LOCK:
        if key not in _WARM:
            _WARM_ORDER.append(key)
            while len(_WARM_ORDER) > _WARM_LIMIT:
                _WARM.pop(_WARM_ORDER.pop(0), None)
        _WARM[key] = state


def _reinit_locks_after_fork() -> None:
    """Replace module locks in forked children.

    A service executor thread may hold one of these locks at the instant
    another thread forks a worker; the child would inherit a locked lock
    it can never release.  Fresh locks in the child are always safe: the
    caches they guard are only read from one thread there.
    """
    global _OWNED_LOCK, _ATTACH_LOCK, _WARM_LOCK
    _OWNED_LOCK = threading.Lock()
    _ATTACH_LOCK = threading.Lock()
    _WARM_LOCK = threading.Lock()


if hasattr(os, "register_at_fork"):  # pragma: no branch - always true on Linux
    os.register_at_fork(after_in_child=_reinit_locks_after_fork)


def clear_process_caches() -> None:
    """Drop attach + warm caches (tests; never required for correctness)."""
    with _WARM_LOCK:
        _WARM.clear()
        _WARM_ORDER.clear()
    with _ATTACH_LOCK:
        for seg, _ in _ATTACHED.values():
            if seg is not None:
                try:
                    seg.close()
                except OSError:  # pragma: no cover
                    pass
        _ATTACHED.clear()
