"""Cross-process budget enforcement for the parallel executor.

A :class:`~repro.resilience.budget.Budget` is a single-process object:
its counters live in the parent's ``JoinStats`` and its deadline clock in
the parent's memory.  :class:`SharedCounters` projects the budget-relevant
totals into shared memory so *workers* can refuse work the moment any
limit is breached, instead of burning CPU on tasks whose results the
parent will discard:

* the parent publishes ``bytes_written`` / ``groups_emitted`` after every
  merged task (it is the only writer, so plain unlocked stores suffice);
* the deadline is shared as an *absolute* ``time.monotonic()`` timestamp —
  on Linux ``CLOCK_MONOTONIC`` is system-wide, so parent and children
  compare against the same clock.

Workers poll :meth:`breached` before each task; the authoritative breach
(with the exception, the checkpoint, the partial result) is still raised
by the parent from its own ``Budget``.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.resilience.budget import Budget
from repro.stats.counters import JoinStats

__all__ = ["SharedCounters"]


class SharedCounters:
    """Shared-memory mirror of a budget's limits and live totals."""

    def __init__(self, ctx, budget: Budget):
        self.max_output_bytes = budget.max_output_bytes
        self.max_groups = budget.max_groups
        self.deadline_seconds = budget.deadline_seconds
        # An armed absolute deadline composes with the relative one: the
        # tighter bound is what :meth:`start` publishes to workers.
        self.armed_deadline_at = budget.deadline_at
        self._bytes = ctx.Value("q", 0, lock=False)
        self._groups = ctx.Value("q", 0, lock=False)
        # 0.0 = deadline clock not started (or no deadline at all).
        self._deadline_at = ctx.Value("d", 0.0, lock=False)

    @classmethod
    def from_budget(cls, ctx, budget: Optional[Budget]) -> Optional["SharedCounters"]:
        """A shared mirror for an active budget, else ``None``."""
        if budget is None or not budget.active:
            return None
        return cls(ctx, budget)

    def start(self) -> None:
        """Fix the absolute deadline (parent, at run start).

        The tighter of the relative deadline (measured from now) and an
        armed absolute request deadline wins, so queue wait and resumed
        runs cannot stretch the workers' allowance.
        """
        candidates = []
        if self.deadline_seconds is not None:
            candidates.append(time.monotonic() + self.deadline_seconds)
        if self.armed_deadline_at is not None:
            candidates.append(self.armed_deadline_at)
        if candidates:
            self._deadline_at.value = min(candidates)

    def publish(self, stats: JoinStats) -> None:
        """Publish the merged totals (parent is the single writer)."""
        self._bytes.value = stats.bytes_written
        self._groups.value = stats.groups_emitted

    def breached(self) -> Optional[str]:
        """The first breached dimension, or ``None`` (workers poll this)."""
        if self.max_output_bytes is not None and self._bytes.value > self.max_output_bytes:
            return "output_bytes"
        if self.max_groups is not None and self._groups.value > self.max_groups:
            return "groups"
        deadline_at = self._deadline_at.value
        if deadline_at and time.monotonic() > deadline_at:
            return "deadline"
        return None
