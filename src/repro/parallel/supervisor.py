"""Worker-pool supervision: spawn, heartbeat, detect, kill, respawn.

The :class:`Supervisor` owns the *processes* of the parallel executor —
the dispatch/retry/merge policy lives in
:class:`~repro.parallel.scheduler.WorkScheduler`.  Each worker runs
:func:`_worker_main`: it rebuilds the join's :class:`TaskState` from the
picklable spec, then serves ``("task", id)`` requests over a duplex
pipe, replying with the task's serializable delta.  A daemon thread
heartbeats over the same pipe so the parent can distinguish a *frozen*
process (no heartbeats — e.g. SIGSTOP, a stuck syscall) from a *slow
task* (heartbeats continue; the per-task timeout governs instead).

Worker death is a normal event: the parent observes the process
sentinel / a dropped pipe, reassigns the in-flight task and respawns a
replacement.  Fault injection for tests rides along: a
:class:`~repro.resilience.chaos.FlakyWorker` is shipped to every worker,
with its kill budget bound to a shared counter so the budget survives
the very process deaths it causes.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.errors import InvalidInputError, WorkerPoolError
from repro.obs.logging import bind_context, get_logger
from repro.obs.metrics import get_registry
from repro.obs.tracing import trace_event
from repro.parallel.shared import SharedCounters
from repro.parallel.tasks import JoinSpec
from repro.resilience.chaos import FlakyWorker

__all__ = ["SupervisorConfig", "Supervisor"]

logger = get_logger("parallel.supervisor")


@dataclass
class SupervisorConfig:
    """Tunables of the supervised pool (all times in seconds)."""

    #: Number of worker processes.
    workers: int = 2
    #: Per-task wall-clock limit; ``None`` disables the timeout.
    task_timeout: Optional[float] = None
    #: Worker heartbeat period.
    heartbeat_interval: float = 0.1
    #: Silence longer than this marks a worker frozen and gets it killed.
    heartbeat_grace: float = 5.0
    #: Failed executions tolerated per task before quarantine
    #: (``2`` -> at most 3 attempts / worker respawns per poison task).
    max_task_retries: int = 2
    #: Decorrelated-jitter retry backoff bounds.
    backoff_base: float = 0.05
    backoff_max: float = 1.0
    #: Speculative re-dispatch of stragglers (first result wins).
    speculate: bool = True
    straggler_factor: float = 4.0
    straggler_min_seconds: float = 1.0
    #: Seed for the retry-jitter RNG (timing only — never affects output).
    seed: int = 0
    #: multiprocessing start method; ``None`` prefers ``fork``.
    start_method: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise InvalidInputError(f"workers must be >= 1, got {self.workers}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise InvalidInputError(
                f"task_timeout must be positive, got {self.task_timeout}"
            )
        if self.max_task_retries < 0:
            raise InvalidInputError(
                f"max_task_retries must be >= 0, got {self.max_task_retries}"
            )


def _worker_main(
    conn,
    spec,
    shared: Optional[SharedCounters],
    heartbeat_interval: float,
    fault: Optional[FlakyWorker],
    wid: int = -1,
) -> None:
    """Entry point of one worker process.

    ``spec`` is either a :class:`~repro.parallel.tasks.JoinSpec` (fork
    start method: the object is inherited, nothing is serialized) or its
    pickled bytes (spawn/forkserver: the parent serializes once and ships
    the same buffer to every worker and respawn).
    """
    bind_context(worker=wid)  # stamps every log record from this process
    if isinstance(spec, (bytes, bytearray)):
        import pickle

        try:
            spec = pickle.loads(spec)
        except BaseException as exc:  # noqa: BLE001 - reported, then exit
            try:
                conn.send(("fatal", f"{type(exc).__name__}: {exc}"))
            except OSError:
                pass
            return
    send_lock = threading.Lock()
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(heartbeat_interval):
            try:
                with send_lock:
                    conn.send(("hb",))
            except OSError:  # parent gone; nothing left to do
                return

    heart = threading.Thread(target=beat, daemon=True)
    heart.start()

    try:
        state = spec.build_state()
    except BaseException as exc:  # noqa: BLE001 - reported, then exit
        with send_lock:
            conn.send(("fatal", f"{type(exc).__name__}: {exc}"))
        return

    with send_lock:
        conn.send(("ready", len(state.tasks)))

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "stop":
            break
        task_id = msg[1]
        if shared is not None:
            kind = shared.breached()
            if kind is not None:
                with send_lock:
                    conn.send(("breach", task_id, kind))
                continue
        if spec.deadline_at is not None and time.monotonic() > spec.deadline_at:
            # The request deadline pickled into the spec has passed:
            # refuse the task instead of computing a result the parent
            # is bound to discard (cooperative cancellation).
            with send_lock:
                conn.send(("breach", task_id, "deadline"))
            continue
        try:
            if fault is not None:
                fault.maybe_fail(task_id)
            started = time.perf_counter()
            events, counters = state.execute(task_id)
            elapsed = time.perf_counter() - started
        except BaseException as exc:  # noqa: BLE001 - reported as task failure
            with send_lock:
                conn.send(("err", task_id, f"{type(exc).__name__}: {exc}"))
            continue
        with send_lock:
            conn.send(("ok", task_id, events, counters, elapsed))
    stop.set()


class _WorkerHandle:
    """Parent-side bookkeeping for one worker process."""

    __slots__ = (
        "wid", "proc", "conn", "ready", "current", "started_at", "last_seen",
    )

    def __init__(self, wid: int, proc, conn):
        self.wid = wid
        self.proc = proc
        self.conn = conn
        self.ready = False
        #: Task id currently executing on this worker (``None`` = idle).
        self.current: Optional[int] = None
        self.started_at = 0.0
        self.last_seen = time.monotonic()

    @property
    def idle(self) -> bool:
        return self.ready and self.current is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Worker(w{self.wid}, pid={self.proc.pid}, current={self.current})"


class Supervisor:
    """Owns the worker processes: spawn, watch, kill, respawn, shut down."""

    def __init__(
        self,
        spec: JoinSpec,
        config: SupervisorConfig,
        shared: Optional[SharedCounters] = None,
        fault: Optional[FlakyWorker] = None,
    ):
        self.spec = spec
        self.config = config
        method = config.start_method
        if method is None:
            method = "fork" if "fork" in mp.get_all_start_methods() else None
        self.ctx = mp.get_context(method)
        self.shared = shared
        self.fault = fault
        if fault is not None and fault.active and fault.max_failures is not None:
            # The kill budget must outlive the workers it kills.
            fault.bind_shared_budget(self.ctx.Value("q", int(fault.max_failures)))
        self.workers: list[_WorkerHandle] = []
        self.respawns = 0
        self._next_wid = 0
        self._fatal: Optional[str] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        for _ in range(self.config.workers):
            self.workers.append(self._spawn())

    def _spawn(self) -> _WorkerHandle:
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        wid = self._next_wid
        if self.ctx.get_start_method() == "fork":
            # Forked children inherit the spec's memory; pickling it
            # here would only waste the copy-on-write pages.
            payload = self.spec
        else:
            # Serialize exactly once — every worker and every respawn
            # ships the same cached buffer (with a DatasetRef this is
            # ~200 bytes instead of the whole dataset).
            payload = self.spec.to_bytes()
            get_registry().data_plane_event("spec_bytes", len(payload))
        proc = self.ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                payload,
                self.shared,
                self.config.heartbeat_interval,
                self.fault,
                wid,
            ),
            daemon=True,
        )
        try:
            proc.start()
        except OSError as exc:  # pragma: no cover - resource exhaustion
            raise WorkerPoolError(f"cannot spawn worker process: {exc}") from exc
        child_conn.close()
        handle = _WorkerHandle(wid, proc, parent_conn)
        self._next_wid += 1
        get_registry().counter(
            "repro_pool_spawns_total", "Worker processes started"
        ).inc()
        logger.debug("worker spawned", extra={"worker": wid, "pid": proc.pid})
        trace_event("worker-spawn", worker=wid)
        return handle

    def kill(self, handle: _WorkerHandle) -> None:
        """Hard-stop one worker (SIGKILL) and forget it."""
        if handle in self.workers:
            self.workers.remove(handle)
        try:
            if handle.proc.is_alive():
                os.kill(handle.proc.pid, signal.SIGKILL)
        except (OSError, AttributeError):  # pragma: no cover - already gone
            pass
        handle.proc.join(timeout=5.0)
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover
            pass
        get_registry().counter(
            "repro_pool_kills_total", "Worker processes hard-killed by the parent"
        ).inc()
        trace_event("worker-kill", worker=handle.wid)

    def respawn(self) -> _WorkerHandle:
        """Spawn a replacement worker and track the respawn count."""
        self.respawns += 1
        logger.warning("respawning worker", extra={"respawns": self.respawns})
        handle = self._spawn()
        self.workers.append(handle)
        return handle

    def shutdown(self) -> None:
        """Stop every worker: polite request, then SIGKILL stragglers."""
        for handle in self.workers:
            try:
                handle.conn.send(("stop",))
            except OSError:
                pass
        deadline = time.monotonic() + 1.0
        for handle in self.workers:
            handle.proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for handle in list(self.workers):
            self.kill(handle)
        self.workers.clear()

    # ------------------------------------------------------------------
    # Dispatch and events
    # ------------------------------------------------------------------
    def dispatch(self, handle: _WorkerHandle, task_id: int) -> bool:
        """Send one task to a worker; ``False`` if the pipe is already dead."""
        try:
            handle.conn.send(("task", task_id))
        except OSError:
            return False
        handle.current = task_id
        handle.started_at = time.monotonic()
        return True

    def poll(self, timeout: float) -> list[tuple[str, _WorkerHandle, tuple]]:
        """Collect worker events: ``("msg", handle, payload)`` / ``("died", handle, ())``.

        Waits up to ``timeout`` for pipe traffic or process death; drains
        every readable pipe completely so heartbeats never back up.
        """
        events: list[tuple[str, _WorkerHandle, tuple]] = []
        by_conn = {h.conn: h for h in self.workers}
        by_sentinel = {h.proc.sentinel: h for h in self.workers}
        try:
            ready = mp.connection.wait(
                list(by_conn) + list(by_sentinel), timeout=timeout
            )
        except OSError:  # pragma: no cover - racing close
            ready = []
        now = time.monotonic()
        dead: list[_WorkerHandle] = []
        for obj in ready:
            handle = by_conn.get(obj)
            if handle is None:
                sentinel_handle = by_sentinel.get(obj)
                if sentinel_handle is not None and sentinel_handle not in dead:
                    dead.append(sentinel_handle)
                continue
            # Drain the pipe; EOF means the process died mid-write.
            try:
                while handle.conn.poll():
                    payload = handle.conn.recv()
                    handle.last_seen = now
                    if payload[0] == "fatal":
                        self._fatal = payload[1]
                    events.append(("msg", handle, payload))
            except (EOFError, OSError):
                if handle not in dead:
                    dead.append(handle)
        for handle in dead:
            if handle in self.workers:
                self.workers.remove(handle)
                handle.proc.join(timeout=5.0)
                try:
                    handle.conn.close()
                except OSError:  # pragma: no cover
                    pass
                events.append(("died", handle, ()))
        if self._fatal is not None:
            raise WorkerPoolError(f"worker failed to initialise: {self._fatal}")
        return events

    def reap_unresponsive(self) -> list[tuple[_WorkerHandle, str]]:
        """Kill workers that breached the task timeout or went silent.

        Returns the killed handles with the reason, so the scheduler can
        account the in-flight task as a failure.
        """
        now = time.monotonic()
        victims: list[tuple[_WorkerHandle, str]] = []
        timeout = self.config.task_timeout
        grace = self.config.heartbeat_grace
        for handle in list(self.workers):
            if (
                timeout is not None
                and handle.current is not None
                and now - handle.started_at > timeout
            ):
                victims.append(
                    (handle, f"task timeout ({timeout:g}s) on worker w{handle.wid}")
                )
            elif grace is not None and now - handle.last_seen > grace:
                victims.append(
                    (handle, f"worker w{handle.wid} stopped heartbeating")
                )
        for handle, reason in victims:
            logger.warning(
                "killing unresponsive worker",
                extra={"worker": handle.wid, "reason": reason},
            )
            self.kill(handle)
        return victims

    def max_heartbeat_age(self) -> float:
        """Seconds since the quietest live worker was last heard from."""
        if not self.workers:
            return 0.0
        now = time.monotonic()
        return max(now - h.last_seen for h in self.workers)
