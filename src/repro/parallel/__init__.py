"""Supervised parallel join execution.

Public entry point: :func:`parallel_join` — the multiprocessing
counterpart of :func:`repro.api.similarity_join`.  The join's canonical
work-unit sequence is executed across a supervised worker pool
(heartbeats, per-task timeouts, automatic respawn, bounded retry,
poison-task quarantine, straggler speculation) and merged back in
canonical order, so the output is byte-identical to the serial run for
any worker count.  See :mod:`repro.parallel.tasks` for the execution
model and :mod:`repro.parallel.scheduler` for the failure policy.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.results import CollectSink, JoinResult, JoinSink
from repro.errors import BudgetExceededError, PoisonTaskError
from repro.io.writer import width_for
from repro.parallel.scheduler import WorkScheduler
from repro.parallel.supervisor import Supervisor, SupervisorConfig
from repro.parallel.tasks import FAMILIES, JoinSpec, TaskState
from repro.resilience.budget import Budget
from repro.resilience.chaos import FlakyWorker

__all__ = [
    "parallel_join",
    "JoinSpec",
    "TaskState",
    "FAMILIES",
    "Supervisor",
    "SupervisorConfig",
    "WorkScheduler",
]


def parallel_join(
    points: np.ndarray,
    eps: float,
    algorithm: str = "csj",
    g: int = 10,
    workers: int = 2,
    sink: Optional[JoinSink] = None,
    index: str = "rstar",
    metric: object = None,
    max_entries: int = 64,
    bulk: Optional[str] = "str",
    partitions_per_axis: Optional[int] = None,
    budget: Optional[Budget] = None,
    task_timeout: Optional[float] = None,
    config: Optional[SupervisorConfig] = None,
    fault: Optional[FlakyWorker] = None,
    engine: str = "vectorized",
    breaker: object = None,
    cancel: object = None,
    data_plane: str = "auto",
    shared: Optional["SharedDataset"] = None,
) -> JoinResult:
    """Run a similarity self-join across a supervised worker pool.

    Parameters mirror :func:`repro.api.similarity_join`; additionally
    ``workers`` sets the pool size, ``task_timeout`` the per-task
    wall-clock limit, ``config`` overrides the full
    :class:`~repro.parallel.supervisor.SupervisorConfig`, and ``fault``
    injects deterministic worker failures for testing.  ``breaker``
    (an object with ``allow/record_failure/record_success/retry_after``,
    e.g. :class:`~repro.service.CircuitBreaker`) guards the pool:
    worker deaths feed it and an open circuit aborts with
    :class:`~repro.errors.CircuitOpenError`.  ``cancel`` (a
    ``threading.Event``) requests cooperative cancellation.

    Deadline propagation: a ``budget`` with a deadline binds end-to-end —
    the per-task timeout is capped at the remaining slack, and the
    absolute deadline is pickled into the :class:`JoinSpec` so workers
    refuse tasks once it passes, even mid-queue.

    ``data_plane`` selects how workers obtain the dataset: ``"shm"``
    publishes ``points`` (and the packed index, when packable) into
    shared-memory segments that workers attach zero-copy, ``"pickle"``
    ships the array inside the spec, ``"auto"`` (default) prefers shm
    where the platform supports it.  The choice never affects output
    bytes.  ``shared`` passes a pre-published
    :class:`~repro.parallel.shm.SharedDataset` (e.g. a service-registered
    dataset) to reuse across calls; without it an ephemeral one is
    created and torn down around the join.

    Guarantees: output is byte-identical to the serial algorithm for any
    worker count; a task that repeatedly kills its workers raises
    :class:`~repro.errors.PoisonTaskError` (task id, attempt count, and
    the partial result from every other task attached as ``partial``); a
    breached ``budget`` raises
    :class:`~repro.errors.BudgetExceededError` with the valid partial
    prefix attached.
    """
    deadline_at = None
    if budget is not None:
        # Pin the request deadline to an absolute timestamp once, here,
        # so every layer below (task timeouts, workers, sink retries)
        # measures against the same clock edge.
        remaining = budget.remaining_seconds()
        if budget.deadline_at is not None:
            deadline_at = budget.deadline_at
        elif remaining is not None:
            deadline_at = time.monotonic() + remaining
        capped = budget.cap_timeout(task_timeout)
        if capped is not None and capped <= 0:
            # Deadline already spent: keep a minimal valid timeout and
            # let the scheduler raise the breach with the partial result
            # attached, exactly like a mid-run expiry.
            capped = 1e-3
        task_timeout = capped
    from repro.parallel.shm import SharedDataset, resolve_data_plane

    plane = resolve_data_plane(data_plane)
    owned: Optional[SharedDataset] = None
    if shared is None and plane == "shm":
        # Ephemeral owner for this one join; torn down in the finally.
        owned = shared = SharedDataset(points, metric=metric, data_plane=data_plane)
    if shared is not None:
        points = shared.points
        plane = shared.plane
    try:
        spec = JoinSpec(
            points=points,
            eps=eps,
            algorithm=algorithm,
            g=g,
            index=index,
            max_entries=max_entries,
            bulk=bulk,
            metric=metric,
            partitions_per_axis=partitions_per_axis,
            engine=engine,
            deadline_at=deadline_at,
            data_plane=plane,
            dataset_ref=shared.ref if shared is not None else None,
        )
        if shared is not None:
            spec._shared = shared
        state = spec.build_state()
        if sink is None:
            sink = CollectSink(id_width=width_for(len(spec.points)))
        stats = sink.stats
        buffer = state.make_buffer(sink, stats)
        if config is None:
            config = SupervisorConfig(workers=workers, task_timeout=task_timeout)
        scheduler = WorkScheduler(
            state,
            sink,
            config,
            stats=stats,
            buffer=buffer,
            budget=budget,
            fault=fault,
            skip_poisoned=True,
            breaker=breaker,
            cancel=cancel,
        )

        def finish() -> JoinResult:
            if buffer is not None:
                buffer.flush()
            elapsed = time.perf_counter() - start
            stats.compute_time += elapsed - (stats.write_time - write_time_before)
            return JoinResult.from_sink(
                sink,
                eps=spec.eps,
                algorithm=spec.label(),
                g=spec.g if spec.compact else None,
                index_name=state.index_name,
            )

        write_time_before = stats.write_time
        start = time.perf_counter()
        try:
            scheduler.run()
        except (BudgetExceededError, PoisonTaskError) as exc:
            exc.partial = finish()
            raise
        return finish()
    finally:
        if owned is not None:
            owned.close()
