"""Deterministic work scheduling over a supervised worker pool.

:class:`WorkScheduler` turns the canonical task sequence of a
:class:`~repro.parallel.tasks.TaskState` into a supervised parallel run:

* **Dispatch** — tasks go out in canonical order to idle workers; task
  ids are positions in the sequence, so sharding is deterministic and
  independent of worker count.
* **Canonical-order merge** — results are buffered until the merge
  cursor reaches them, then applied (events + counters) through the one
  sink / CSJ merge window in task order.  Workers race; the output
  cannot: bytes are identical for any worker count, including 1.
* **Retry with decorrelated jitter** — a failed task (worker error,
  crash, timeout) is requeued after a randomised backoff; the jitter RNG
  affects *timing only*, never output.
* **Poison quarantine** — a task whose failures exceed
  ``max_task_retries`` is quarantined instead of retried forever and the
  run surfaces :class:`~repro.errors.PoisonTaskError`.  With
  ``skip_poisoned=True`` (the API path) every other task still completes
  and merges first, so the partial result is maximal; with ``False``
  (the checkpointed path) the merge halts at the poisoned task so the
  journal cursor remains exact.
* **Straggler speculation** — when the queue is empty and idle workers
  remain, a task running far beyond the median duration is re-dispatched
  to a second worker; the first result wins, duplicates are dropped.
* **Budget enforcement** — the parent checks its
  :class:`~repro.resilience.budget.Budget` at every merge and publishes
  totals to :class:`~repro.parallel.shared.SharedCounters` so workers
  refuse tasks the moment a cap or deadline is breached anywhere.
"""

from __future__ import annotations

import heapq
import random
import statistics
import time
from collections import deque
from typing import Callable, Optional

from repro.core.groups import GroupBuffer
from repro.core.results import JoinSink
from repro.errors import BudgetExceededError, CircuitOpenError, PoisonTaskError, WorkerPoolError
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry
from repro.obs.tracing import span as trace_span
from repro.parallel.shared import SharedCounters
from repro.parallel.supervisor import Supervisor, SupervisorConfig
from repro.parallel.tasks import TaskState
from repro.resilience.budget import Budget
from repro.resilience.chaos import FlakyWorker
from repro.stats.counters import JoinStats

__all__ = ["WorkScheduler"]

logger = get_logger("parallel.scheduler")

#: Maximum concurrent executions of one task (primary + speculative copy).
_MAX_COPIES = 2


class WorkScheduler:
    """Run ``state``'s tasks [start_cursor, n) through a supervised pool.

    :meth:`run` drives the pool to completion (or a raised budget/poison/
    pool error).  ``self.merged`` is always the contiguous merged prefix
    of the canonical sequence — the resumable cursor.
    """

    def __init__(
        self,
        state: TaskState,
        sink: JoinSink,
        config: SupervisorConfig,
        stats: JoinStats,
        buffer: Optional[GroupBuffer] = None,
        budget: Optional[Budget] = None,
        fault: Optional[FlakyWorker] = None,
        start_cursor: int = 0,
        skip_poisoned: bool = True,
        breaker: object = None,
        cancel: object = None,
    ):
        self.state = state
        self.sink = sink
        self.config = config
        self.stats = stats
        self.buffer = buffer
        self.budget = budget
        self.fault = fault
        self.skip_poisoned = skip_poisoned
        #: Optional circuit breaker guarding the pool (duck-typed:
        #: ``allow()/record_failure()/record_success()/retry_after()``).
        #: Worker deaths feed it, so a respawn storm opens the circuit
        #: mid-run instead of thrashing the host.
        self.breaker = breaker
        #: Optional cancellation signal (``threading.Event`` protocol).
        #: Checked every scheduling round: in-flight work is abandoned
        #: cooperatively, workers are shut down, and the run raises.
        self.cancel = cancel
        self.merged = int(start_cursor)

        n = len(state.tasks)
        self._n = n
        self._pending: deque[int] = deque(range(self.merged, n))
        self._delayed: list[tuple[float, int]] = []  # (ready_at, task_id) heap
        self._completed: dict[int, tuple[list, tuple]] = {}
        self._failures: dict[int, int] = {}
        self._last_error: dict[int, str] = {}
        self._backoff: dict[int, float] = {}
        self._quarantined: dict[int, str] = {}
        self._in_flight: dict[int, int] = {}  # task_id -> live copies
        self._durations: list[float] = []
        self._rng = random.Random(config.seed)
        self._shared: Optional[SharedCounters] = None
        self.speculated: int = 0
        self.speculation_wins: int = 0
        self._spec_wids: dict[int, int] = {}  # task_id -> speculative worker
        #: Whether a worker death already recorded a breaker failure
        #: this run (guards against double-counting one incident).
        self._breaker_fed = False

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, on_task_merged: Optional[Callable[[int], None]] = None) -> None:
        """Execute and merge every remaining task.

        ``on_task_merged(cursor)`` fires after each task's delta lands in
        the sink (cursor = tasks merged so far) — the checkpoint hook.
        """
        if self.breaker is not None:
            # Health check only: when the serving layer drives this run
            # it already holds the half-open probe slot, so the entry
            # gate must refuse an open circuit without consuming a
            # second probe (a duck-typed breaker without the ``consume``
            # keyword keeps the consuming behaviour).
            try:
                allowed = self.breaker.allow(consume=False)
            except TypeError:
                allowed = self.breaker.allow()
            if not allowed:
                raise CircuitOpenError(
                    "worker-pool", retry_after=self.breaker.retry_after()
                )
        if self.budget is not None:
            self.budget.start()
        if self.merged >= self._n:
            return

        self._shared = self._make_shared()
        supervisor = Supervisor(
            self.state.spec, self.config, shared=self._shared, fault=self.fault
        )
        if self._shared is not None:
            self._shared.start()
            self._shared.publish(self.stats)
        supervisor.start()
        registry = get_registry()
        queue_depth = registry.gauge(
            "repro_pool_queue_depth", "Tasks waiting for an idle worker"
        )
        heartbeat_age = registry.gauge(
            "repro_pool_max_heartbeat_age_seconds",
            "Silence of the quietest live worker",
        )
        logger.info(
            "pool started",
            extra={
                "workers": self.config.workers,
                "tasks": self._n - self.merged,
                "data_plane": getattr(self.state.spec, "data_plane", "pickle"),
            },
        )
        try:
            while not self._done():
                if self.cancel is not None and self.cancel.is_set():
                    raise BudgetExceededError(
                        "cancelled", 0.0, 0.0, "join cancelled cooperatively"
                    )
                self._promote_ready_retries()
                self._dispatch(supervisor)
                for kind, handle, payload in supervisor.poll(timeout=0.05):
                    if kind == "died":
                        self._on_worker_died(supervisor, handle)
                    else:
                        self._on_message(handle, payload)
                for handle, reason in supervisor.reap_unresponsive():
                    self._on_worker_killed(supervisor, handle, reason)
                self._merge(on_task_merged)
                queue_depth.set(len(self._pending) + len(self._delayed))
                heartbeat_age.set(supervisor.max_heartbeat_age())
                if self.budget is not None:
                    # Deadline must fire even while every task is stuck
                    # in flight and nothing reaches the merge cursor.
                    self.budget.enforce(self.stats)
                if self.breaker is not None and self.breaker.state == "open":
                    # Worker deaths opened the circuit mid-run: stop
                    # feeding a pool that keeps eating its workers.
                    raise CircuitOpenError(
                        "worker-pool", retry_after=self.breaker.retry_after()
                    )
                if not supervisor.workers and not self._done():
                    # All workers gone and nothing respawned: fatal.
                    raise WorkerPoolError(
                        "worker pool is empty with tasks outstanding"
                    )
        except WorkerPoolError:
            # Worker deaths already fed the breaker one failure each via
            # _on_worker_died/_on_worker_killed; only a death-free pool
            # error (e.g. a spawn or initialisation failure) is a fresh
            # incident to count.
            if self.breaker is not None and not self._breaker_fed:
                self.breaker.record_failure()
            raise
        finally:
            supervisor.shutdown()
            queue_depth.set(0.0)
            heartbeat_age.set(0.0)
            self._export_pool_metrics(registry, supervisor)

        if self.breaker is not None:
            self.breaker.record_success()

        if self._quarantined:
            task_id = min(self._quarantined)
            raise PoisonTaskError(
                task_id,
                self._failures.get(task_id, 0),
                self._quarantined[task_id],
            )

    def _export_pool_metrics(self, registry, supervisor: Supervisor) -> None:
        """Publish the run's pool-health totals and log one summary."""
        registry.counter(
            "repro_pool_respawns_total", "Workers respawned after death"
        ).inc(supervisor.respawns)
        registry.counter(
            "repro_pool_speculated_total", "Straggler tasks re-dispatched"
        ).inc(self.speculated)
        registry.counter(
            "repro_pool_speculation_wins_total",
            "Speculative copies that finished first",
        ).inc(self.speculation_wins)
        registry.counter(
            "repro_pool_task_retries_total", "Task execution failures retried"
        ).inc(sum(self._failures.values()))
        registry.counter(
            "repro_pool_quarantined_total", "Tasks quarantined as poison"
        ).inc(len(self._quarantined))
        logger.info(
            "pool finished",
            extra={
                "merged": self.merged,
                "tasks": self._n,
                "respawns": supervisor.respawns,
                "speculated": self.speculated,
                "speculation_wins": self.speculation_wins,
                "retries": sum(self._failures.values()),
                "quarantined": len(self._quarantined),
            },
        )

    # ------------------------------------------------------------------
    # Completion predicates
    # ------------------------------------------------------------------
    def _done(self) -> bool:
        if self.merged >= self._n:
            return True
        if not self.skip_poisoned and self.merged in self._quarantined:
            # The checkpointed path cannot merge past a poisoned task;
            # stop as soon as the cursor hits it.
            return True
        return False

    def _runnable(self, task_id: int) -> bool:
        return (
            task_id not in self._completed
            and task_id not in self._quarantined
            and task_id >= self.merged
        )

    # ------------------------------------------------------------------
    # Dispatch, speculation, retries
    # ------------------------------------------------------------------
    def _promote_ready_retries(self) -> None:
        now = time.monotonic()
        while self._delayed and self._delayed[0][0] <= now:
            _, task_id = heapq.heappop(self._delayed)
            if self._runnable(task_id):
                self._pending.appendleft(task_id)

    def _dispatch(self, supervisor: Supervisor) -> None:
        idle = [h for h in supervisor.workers if h.idle]
        while idle and self._pending:
            task_id = self._pending.popleft()
            if not self._runnable(task_id):
                continue
            handle = idle.pop()
            if supervisor.dispatch(handle, task_id):
                self._in_flight[task_id] = self._in_flight.get(task_id, 0) + 1
            else:
                self._pending.appendleft(task_id)
                idle.append(handle)
                break
        if idle and not self._pending and not self._delayed and self.config.speculate:
            self._speculate(supervisor, idle)

    def _speculate(self, supervisor: Supervisor, idle: list) -> None:
        """Duplicate the slowest running task onto an idle worker."""
        threshold = self.config.straggler_min_seconds
        if self._durations:
            threshold = max(
                threshold,
                self.config.straggler_factor * statistics.median(self._durations),
            )
        now = time.monotonic()
        candidates = sorted(
            (
                h
                for h in supervisor.workers
                if h.current is not None
                and now - h.started_at > threshold
                and self._in_flight.get(h.current, 0) < _MAX_COPIES
                and self._runnable(h.current)
            ),
            key=lambda h: h.started_at,
        )
        for slow in candidates:
            if not idle:
                break
            handle = idle.pop()
            task_id = slow.current
            if supervisor.dispatch(handle, task_id):
                self._in_flight[task_id] += 1
                self.speculated += 1
                self._spec_wids[task_id] = handle.wid
                logger.debug(
                    "speculating straggler task",
                    extra={"task": task_id, "worker": handle.wid},
                )

    def _record_failure(self, task_id: int, reason: str) -> None:
        if not self._runnable(task_id):
            return  # a speculative copy already finished it
        count = self._failures.get(task_id, 0) + 1
        self._failures[task_id] = count
        self._last_error[task_id] = reason
        if count > self.config.max_task_retries:
            self._quarantined[task_id] = reason
            logger.warning(
                "quarantining poison task",
                extra={"task": task_id, "failures": count, "reason": reason},
            )
            return
        logger.debug(
            "task failed, will retry",
            extra={"task": task_id, "failures": count, "reason": reason},
        )
        # Decorrelated jitter: sleep ~ U(base, 3 * previous), capped.
        prev = self._backoff.get(task_id, self.config.backoff_base)
        delay = min(
            self.config.backoff_max,
            self._rng.uniform(self.config.backoff_base, prev * 3),
        )
        self._backoff[task_id] = delay
        heapq.heappush(self._delayed, (time.monotonic() + delay, task_id))

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------
    def _on_message(self, handle, payload) -> None:
        kind = payload[0]
        if kind in ("hb", "ready", "fatal"):
            if kind == "ready":
                handle.ready = True
            return
        task_id = payload[1]
        if handle.current == task_id:
            handle.current = None
        self._in_flight[task_id] = max(0, self._in_flight.get(task_id, 1) - 1)
        if kind == "ok":
            _, _, events, counters, elapsed = payload
            self._durations.append(elapsed)
            if self._runnable(task_id):
                self._completed[task_id] = (events, counters)
                if self._spec_wids.get(task_id) == handle.wid:
                    self.speculation_wins += 1
        elif kind == "err":
            self._record_failure(task_id, payload[2])
        elif kind == "breach":
            # The worker refused the task because a shared limit tripped.
            # Re-check authoritatively; if the parent's budget agrees it
            # raises here, otherwise (a momentary race) requeue the task.
            if self.budget is not None:
                self.budget.enforce(self.stats)
            if self._runnable(task_id):
                self._pending.appendleft(task_id)

    def _on_worker_died(self, supervisor: Supervisor, handle) -> None:
        task_id = handle.current
        if self.breaker is not None:
            self.breaker.record_failure()
            self._breaker_fed = True
        if task_id is not None:
            self._in_flight[task_id] = max(0, self._in_flight.get(task_id, 1) - 1)
            self._record_failure(
                task_id, f"worker w{handle.wid} died while executing the task"
            )
        if not self._done():
            supervisor.respawn()

    def _on_worker_killed(self, supervisor: Supervisor, handle, reason: str) -> None:
        task_id = handle.current
        if self.breaker is not None:
            self.breaker.record_failure()
            self._breaker_fed = True
        if task_id is not None:
            self._in_flight[task_id] = max(0, self._in_flight.get(task_id, 1) - 1)
            self._record_failure(task_id, reason)
        if not self._done():
            supervisor.respawn()

    # ------------------------------------------------------------------
    # Canonical-order merge
    # ------------------------------------------------------------------
    def _make_shared(self) -> Optional[SharedCounters]:
        import multiprocessing as mp

        method = self.config.start_method
        if method is None:
            method = "fork" if "fork" in mp.get_all_start_methods() else None
        return SharedCounters.from_budget(mp.get_context(method), self.budget)

    def _merge(self, on_task_merged: Optional[Callable[[int], None]]) -> None:
        shared = self._shared
        if self.merged >= self._n:
            return
        if self.merged not in self._completed and not (
            self.skip_poisoned and self.merged in self._quarantined
        ):
            return  # nothing at the cursor yet; skip the span entirely
        progressed = False
        start_cursor = self.merged
        with trace_span("csj-merge", cursor=start_cursor) as sp:
            while self.merged < self._n:
                task_id = self.merged
                if task_id in self._completed:
                    events, counters = self._completed.pop(task_id)
                    if self.budget is not None:
                        self.budget.check(self.stats)
                    self.state.apply(
                        events, counters, self.sink, self.buffer, self.stats
                    )
                    self.merged += 1
                    progressed = True
                    if on_task_merged is not None:
                        on_task_merged(self.merged)
                elif self.skip_poisoned and task_id in self._quarantined:
                    self.merged += 1  # hole acknowledged; partial result only
                    progressed = True
                else:
                    break
            if hasattr(sp, "attrs"):
                sp.attrs["merged"] = self.merged - start_cursor
        if progressed and shared is not None:
            shared.publish(self.stats)
