"""Serializable join specifications and pure per-task execution.

The parallel executor rests on one structural fact: every supported join
is a deterministic, flat sequence of *work units* (leaf self/cross
joins, early-stopped subtree groups, grid cells, PBSM partitions) whose
canonical order is fixed by the data and the configuration alone —
PR 1's checkpoint layer already enumerates the tree and grid sequences,
and :func:`repro.core.partitioned.pbsm_plan` fixes the partition order.

:class:`JoinSpec` is the picklable recipe for one join.  Every process —
the parent and each worker — independently materialises the *same*
:class:`TaskState` from it (index builds, grid bucketing and partition
planning are all deterministic), so a task is fully identified by its
integer position in the canonical sequence.  Workers call
:meth:`TaskState.execute` — a pure function returning serializable
events (the :func:`repro.core.groups.apply_events` vocabulary) plus
counter charges — and the parent replays the deltas *in canonical task
order* through the single sink / CSJ merge window.  Output is therefore
byte-identical for any worker count, including 1, by construction.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.csj import (
    leaf_cross_delta,
    leaf_self_delta,
    node_group_delta,
    packed_node_group_delta,
    packed_pair_group_delta,
    pair_group_delta,
)
from repro.core.egrid import cell_pair_delta, cell_self_delta
from repro.core.groups import GroupBuffer, apply_events
from repro.core.partitioned import partition_delta, pbsm_plan
from repro.core.results import JoinSink
from repro.errors import InvalidInputError, validate_eps, validate_points
from repro.geometry.metrics import get_metric
from repro.stats.counters import JoinStats

__all__ = ["FAMILIES", "JoinSpec", "TaskState"]

#: algorithm name -> (family, compact)
FAMILIES = {
    "ssj": ("tree", False),
    "ncsj": ("tree", True),
    "csj": ("tree", True),
    "egrid": ("egrid", False),
    "egrid-csj": ("egrid", True),
    "pbsm": ("pbsm", False),
    "pbsm-csj": ("pbsm", True),
}


@dataclass
class JoinSpec:
    """Everything needed to rebuild one join's task sequence anywhere.

    All fields are plain picklable values (the metric is kept as its
    *specification*, not a metric object) so the spec crosses process
    boundaries under both the ``fork`` and ``spawn`` start methods.
    """

    points: np.ndarray
    eps: float
    algorithm: str = "csj"
    g: int = 10
    index: str = "rstar"
    max_entries: int = 64
    bulk: Optional[str] = "str"
    metric: object = None
    partitions_per_axis: Optional[int] = None
    engine: str = "vectorized"
    #: Absolute request deadline (``time.monotonic()`` timestamp) carried
    #: to every worker.  Execution-only: it never affects the task
    #: sequence or the output bytes, it only lets a worker refuse tasks
    #: whose results the parent would discard.  ``CLOCK_MONOTONIC`` is
    #: system-wide on Linux, so the pickled timestamp stays meaningful in
    #: child processes under both ``fork`` and ``spawn``.
    deadline_at: Optional[float] = None
    #: Resolved data plane (``"pickle"`` or ``"shm"``).  Execution-only:
    #: like ``deadline_at`` it never affects the task sequence or the
    #: output bytes, only *how* workers obtain the dataset.
    data_plane: str = "pickle"
    #: Shared-memory reference to the published ``points`` segment.  When
    #: set, pickling this spec ships the ~200-byte ref instead of the
    #: array and the receiving process re-attaches in ``__setstate__``.
    dataset_ref: Optional[object] = None
    #: Shared-memory reference to the published packed-index arrays
    #: (set lazily by the first ``build_state`` on the owner side).
    packed_ref: Optional[object] = None
    #: Spatial shard count.  ``None`` runs the classic unsharded task
    #: sequence; any integer >= 1 builds the sharded canonical sequence
    #: (:class:`repro.shard.state.ShardTaskState`) whose replayed output
    #: is invariant across shard counts.
    shards: Optional[int] = None
    #: Shard partitioner (``"grid"`` or ``"hilbert"``); only meaningful
    #: with ``shards`` set.
    partitioner: str = "grid"

    def __post_init__(self) -> None:
        from repro.core.frontier import resolve_engine  # deferred: heavy import

        if self.points is None and self.dataset_ref is not None:
            from repro.parallel.shm import attach_points

            self.points = attach_points(self.dataset_ref)
        self.points = validate_points(self.points)
        self.eps = validate_eps(self.eps)
        self.engine = resolve_engine(self.engine)
        self.algorithm = str(self.algorithm).lower()
        if self.algorithm not in FAMILIES:
            raise InvalidInputError(
                f"unknown or non-parallelizable algorithm {self.algorithm!r}; "
                f"supported: {tuple(FAMILIES)}"
            )
        if self.g < 0:
            raise InvalidInputError(f"window size g must be >= 0, got {self.g}")
        if self.algorithm == "ncsj":
            self.g = 0
        self.g = int(self.g)
        if self.shards is not None:
            if int(self.shards) != self.shards or self.shards < 1:
                raise InvalidInputError(
                    f"shards must be an integer >= 1, got {self.shards}"
                )
            self.shards = int(self.shards)
            from repro.shard.planner import PARTITIONERS  # deferred: cycle

            self.partitioner = str(self.partitioner).lower()
            if self.partitioner not in PARTITIONERS:
                raise InvalidInputError(
                    f"unknown partitioner {self.partitioner!r}; "
                    f"known: {PARTITIONERS}"
                )

    @property
    def family(self) -> str:
        return FAMILIES[self.algorithm][0]

    @property
    def compact(self) -> bool:
        return FAMILIES[self.algorithm][1]

    def label(self) -> str:
        """The algorithm label recorded on the JoinResult (matches serial)."""
        if self.algorithm == "csj":
            return f"csj({self.g})" if self.g else "ncsj"
        if self.algorithm == "egrid-csj":
            return f"egrid-csj({self.g})" if self.g else "egrid-ncsj"
        if self.algorithm == "pbsm-csj":
            return f"pbsm-csj({self.g})" if self.g else "pbsm-ncsj"
        return self.algorithm

    # ------------------------------------------------------------------
    # Data plane: what crosses the process boundary
    # ------------------------------------------------------------------
    #: Attributes that never cross a process boundary: the owning
    #: :class:`~repro.parallel.shm.SharedDataset` (workers must not
    #: inherit ownership) and the cached pickle of this spec.
    _TRANSIENT = ("_shared", "_spec_bytes")

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        for name in self._TRANSIENT:
            state.pop(name, None)
        if self.dataset_ref is not None:
            # The ref is the dataset: ship ~200 bytes, not the array.
            state["points"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self.points is None and self.dataset_ref is not None:
            from repro.parallel.shm import attach_points

            self.points = attach_points(self.dataset_ref)

    def to_bytes(self) -> bytes:
        """This spec pickled once; cached so respawns reuse the bytes."""
        cached = getattr(self, "_spec_bytes", None)
        if cached is None:
            cached = pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
            self._spec_bytes = cached
        return cached

    def state_key(self) -> Optional[tuple]:
        """Warm-cache key: dataset fingerprint + join configuration.

        ``None`` (no caching) when the dataset has no fingerprint — i.e.
        neither a :class:`~repro.parallel.shm.SharedDataset` owner nor a
        :class:`~repro.parallel.shm.DatasetRef` is involved, so there is
        no cheap identity to key on.  Execution-only knobs with no
        effect on the task sequence (``deadline_at``, ``data_plane``)
        are deliberately absent.
        """
        if self.dataset_ref is not None:
            fingerprint = self.dataset_ref.fingerprint
        else:
            shared = getattr(self, "_shared", None)
            if shared is None:
                return None
            fingerprint = shared.fingerprint
        return (
            fingerprint,
            repr(self.eps),
            self.algorithm,
            self.g,
            self.index,
            self.max_entries,
            self.bulk,
            get_metric(self.metric).name,
            repr(self.metric),
            self.engine,
            self.partitions_per_axis,
            self.shards,
            self.partitioner if self.shards is not None else None,
        )

    def build_state(self) -> "TaskState":
        """Materialise the canonical task sequence (deterministic).

        When the spec is tied to a fingerprinted dataset, built states
        are cached per process: a respawned worker (or the next request
        against a registered dataset) adopts the existing state instead
        of re-attaching and re-enumerating.
        """
        from repro.parallel import shm

        key = self.state_key()
        if key is not None:
            cached = shm.warm_state_get(key)
            if cached is not None:
                state = cached.rebind(self)
                self._restore_packed_ref(state)
                return state
        if self.shards is not None:
            from repro.shard.state import ShardTaskState  # deferred: cycle

            state = ShardTaskState(self)
        else:
            state = TaskState(self)
        if key is not None:
            shm.warm_state_put(key, state)
        return state

    def _restore_packed_ref(self, state: "TaskState") -> None:
        """Re-derive :attr:`packed_ref` after a warm-cache hit.

        The warm state was built (and its pack possibly published) under
        an earlier spec; this spec must carry its own ref so workers
        spawned for it can adopt instead of rebuilding.  Publishing is
        idempotent for an already-published pack on the same
        ``SharedDataset`` and a single memcpy on a fresh one.
        """
        if (
            self.packed_ref is not None
            or self.dataset_ref is None
            or state.task_mode != "packed"
            or state.packed is None
        ):
            return
        shared = getattr(self, "_shared", None)
        if shared is None:
            return
        self.packed_ref = shared.publish_packed(
            (self.index, self.max_entries, self.bulk, repr(self.metric)),
            state.packed,
        )


class TaskState:
    """One process's materialisation of a :class:`JoinSpec`.

    Holds the data structures tasks execute against (tree / grid cells /
    partition plan) and the canonical task list.  :meth:`execute` is pure
    with respect to shared join state: it touches no sink and no group
    window, so any process may run any task in any order.
    """

    def __init__(self, spec: JoinSpec):
        from repro.obs.metrics import get_registry

        get_registry().data_plane_event("rebuild")
        self.spec = spec
        self.points = spec.points
        self.metric = get_metric(spec.metric)
        self.eps = spec.eps
        self.compact = spec.compact
        self.family = spec.family
        # Effective merge window: non-compact algorithms never merge.
        self.g = spec.g if spec.compact else 0
        self.home_of: Optional[np.ndarray] = None
        #: ``"packed"`` when tree tasks are packed node *ids* executed
        #: against :attr:`packed` arrays; ``"node"`` when they carry
        #: :class:`~repro.index.base.IndexNode` objects.
        self.task_mode = "node"
        self.packed = None

        if self.family == "tree":
            self.tree = None
            packed = None
            if spec.packed_ref is not None and spec.engine == "vectorized":
                # Zero-copy path: adopt the published packed arrays —
                # no tree is ever built in this process.
                from repro.parallel.shm import attach_packed

                packed = attach_packed(spec.packed_ref, self.points, self.metric)
            if packed is None:
                from repro.api import build_index  # deferred: api imports core

                shared = getattr(spec, "_shared", None)
                if shared is not None:
                    self.tree = shared.get_tree(
                        spec.index,
                        max_entries=spec.max_entries,
                        bulk=spec.bulk,
                        metric=spec.metric,
                    )
                else:
                    self.tree = build_index(
                        spec.points,
                        spec.index,
                        metric=self.metric,
                        max_entries=spec.max_entries,
                        bulk=spec.bulk,
                    )
                if spec.engine == "vectorized":
                    from repro.index.packed import pack_index

                    packed = pack_index(self.tree)
                    if (
                        packed is not None
                        and shared is not None
                        and spec.dataset_ref is not None
                        and spec.packed_ref is None
                    ):
                        # Publish once so workers can adopt instead of
                        # rebuilding; must happen before the supervisor
                        # pickles the spec (build_state precedes start).
                        spec.packed_ref = shared.publish_packed(
                            (
                                spec.index,
                                spec.max_entries,
                                spec.bulk,
                                repr(spec.metric),
                            ),
                            packed,
                        )
            if packed is not None:
                from repro.core.frontier import enumerate_packed_task_ids

                self.packed = packed
                self.task_mode = "packed"
                self.tasks = enumerate_packed_task_ids(
                    packed, self.eps, self.compact
                )
            else:
                from repro.resilience.checkpoint import _enumerate_tree_tasks

                self.tasks = _enumerate_tree_tasks(self.tree, self.eps, self.compact)
            if self.tree is not None:
                self.index_name = type(self.tree).name
            else:
                from repro.index import get_index_class

                self.index_name = get_index_class(spec.index).name
        elif self.family == "egrid":
            from repro.resilience.checkpoint import _enumerate_egrid_tasks

            self.tree = None
            self.tasks = _enumerate_egrid_tasks(spec.points, self.eps)
            self.index_name = "egrid"
        else:  # pbsm
            self.tree = None
            if len(spec.points) > 1:
                cells, self.home_of, _ = pbsm_plan(
                    spec.points, self.eps, spec.partitions_per_axis
                )
                self.tasks = [("part", np.asarray(key), ids) for key, ids in cells.items()]
            else:
                self.tasks = []
            self.index_name = "pbsm"

    def __len__(self) -> int:
        return len(self.tasks)

    def rebind(self, spec: JoinSpec) -> "TaskState":
        """A shallow clone of this state bound to ``spec``.

        Used by the warm cache: the task sequence and data structures
        are fully determined by the cache key, but the spec carries
        per-request execution knobs (``deadline_at``) that must come
        from the *current* request.  Everything here is read-only during
        execution, so clones may share it freely.
        """
        if spec is self.spec:
            return self
        clone = object.__new__(TaskState)
        clone.__dict__ = self.__dict__.copy()
        clone.spec = spec
        return clone

    # ------------------------------------------------------------------
    # Pure execution (workers)
    # ------------------------------------------------------------------
    def execute(self, task_id: int) -> tuple[list, tuple[int, int, int]]:
        """Run one task; returns ``(events, (dc, mbr_checks, early_stops))``.

        Pure: no sink writes, no window mutation, no stats mutation —
        safe to run in any process and to run twice (speculation,
        retries) with identical results.
        """
        task = self.tasks[task_id]
        kind = task[0]
        if self.family == "tree":
            if self.task_mode == "packed":
                packed = self.packed
                if kind == "group":
                    return (
                        packed_node_group_delta(self.points, packed, task[1]),
                        (0, 0, 1),
                    )
                if kind == "pgroup":
                    return (
                        packed_pair_group_delta(
                            self.points, packed, task[1], task[2]
                        ),
                        (0, 0, 1),
                    )
                if kind == "self":
                    events, dc = leaf_self_delta(
                        self.points, self.metric, self.eps,
                        packed.leaf_entry_ids(task[1]), self.g,
                    )
                    return events, (dc, 0, 0)
                events, dc = leaf_cross_delta(
                    self.points, self.metric, self.eps,
                    packed.leaf_entry_ids(task[1]),
                    packed.leaf_entry_ids(task[2]),
                    self.g,
                )
                return events, (dc, 0, 0)
            if kind == "group":
                return node_group_delta(self.points, task[1]), (0, 0, 1)
            if kind == "pgroup":
                return pair_group_delta(self.points, task[1], task[2]), (0, 0, 1)
            if kind == "self":
                events, dc = leaf_self_delta(
                    self.points, self.metric, self.eps, task[1].entry_ids, self.g
                )
                return events, (dc, 0, 0)
            events, dc = leaf_cross_delta(
                self.points, self.metric, self.eps,
                task[1].entry_ids, task[2].entry_ids, self.g,
            )
            return events, (dc, 0, 0)
        if self.family == "egrid":
            if kind == "self":
                events, dc, mbr, stops = cell_self_delta(
                    self.points, task[1], self.eps, self.metric, self.compact
                )
            else:
                events, dc, mbr, stops = cell_pair_delta(
                    self.points, task[1], task[2], self.eps, self.metric, self.compact
                )
            return events, (dc, mbr, stops)
        events, dc = partition_delta(
            self.points, task[2], task[1], self.home_of, self.eps,
            self.metric, self.compact,
        )
        return events, (dc, 0, 0)

    # ------------------------------------------------------------------
    # Ordered replay (parent)
    # ------------------------------------------------------------------
    def make_buffer(self, sink: JoinSink, stats: JoinStats) -> Optional[GroupBuffer]:
        """The parent-side merge window (``None`` for plain-link joins)."""
        if not self.compact:
            return None
        dim = self.points.shape[1]
        return GroupBuffer(
            self.g, self.eps, sink, metric=self.metric, stats=stats, dim=dim
        )

    @staticmethod
    def apply(
        events: list,
        counters: tuple[int, int, int],
        sink: JoinSink,
        buffer: Optional[GroupBuffer],
        stats: JoinStats,
    ) -> None:
        """Replay one task's delta into the shared join state (parent only)."""
        dc, mbr, stops = counters
        stats.distance_computations += dc
        stats.mbr_checks += mbr
        stats.early_stops += stops
        apply_events(events, sink, buffer)
