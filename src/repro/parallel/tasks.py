"""Serializable join specifications and pure per-task execution.

The parallel executor rests on one structural fact: every supported join
is a deterministic, flat sequence of *work units* (leaf self/cross
joins, early-stopped subtree groups, grid cells, PBSM partitions) whose
canonical order is fixed by the data and the configuration alone —
PR 1's checkpoint layer already enumerates the tree and grid sequences,
and :func:`repro.core.partitioned.pbsm_plan` fixes the partition order.

:class:`JoinSpec` is the picklable recipe for one join.  Every process —
the parent and each worker — independently materialises the *same*
:class:`TaskState` from it (index builds, grid bucketing and partition
planning are all deterministic), so a task is fully identified by its
integer position in the canonical sequence.  Workers call
:meth:`TaskState.execute` — a pure function returning serializable
events (the :func:`repro.core.groups.apply_events` vocabulary) plus
counter charges — and the parent replays the deltas *in canonical task
order* through the single sink / CSJ merge window.  Output is therefore
byte-identical for any worker count, including 1, by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.csj import (
    leaf_cross_delta,
    leaf_self_delta,
    node_group_delta,
    pair_group_delta,
)
from repro.core.egrid import cell_pair_delta, cell_self_delta
from repro.core.groups import GroupBuffer, apply_events
from repro.core.partitioned import partition_delta, pbsm_plan
from repro.core.results import JoinSink
from repro.errors import InvalidInputError, validate_eps, validate_points
from repro.geometry.metrics import get_metric
from repro.stats.counters import JoinStats

__all__ = ["FAMILIES", "JoinSpec", "TaskState"]

#: algorithm name -> (family, compact)
FAMILIES = {
    "ssj": ("tree", False),
    "ncsj": ("tree", True),
    "csj": ("tree", True),
    "egrid": ("egrid", False),
    "egrid-csj": ("egrid", True),
    "pbsm": ("pbsm", False),
    "pbsm-csj": ("pbsm", True),
}


@dataclass
class JoinSpec:
    """Everything needed to rebuild one join's task sequence anywhere.

    All fields are plain picklable values (the metric is kept as its
    *specification*, not a metric object) so the spec crosses process
    boundaries under both the ``fork`` and ``spawn`` start methods.
    """

    points: np.ndarray
    eps: float
    algorithm: str = "csj"
    g: int = 10
    index: str = "rstar"
    max_entries: int = 64
    bulk: Optional[str] = "str"
    metric: object = None
    partitions_per_axis: Optional[int] = None
    engine: str = "vectorized"
    #: Absolute request deadline (``time.monotonic()`` timestamp) carried
    #: to every worker.  Execution-only: it never affects the task
    #: sequence or the output bytes, it only lets a worker refuse tasks
    #: whose results the parent would discard.  ``CLOCK_MONOTONIC`` is
    #: system-wide on Linux, so the pickled timestamp stays meaningful in
    #: child processes under both ``fork`` and ``spawn``.
    deadline_at: Optional[float] = None

    def __post_init__(self) -> None:
        from repro.core.frontier import resolve_engine  # deferred: heavy import

        self.points = validate_points(self.points)
        self.eps = validate_eps(self.eps)
        self.engine = resolve_engine(self.engine)
        self.algorithm = str(self.algorithm).lower()
        if self.algorithm not in FAMILIES:
            raise InvalidInputError(
                f"unknown or non-parallelizable algorithm {self.algorithm!r}; "
                f"supported: {tuple(FAMILIES)}"
            )
        if self.g < 0:
            raise InvalidInputError(f"window size g must be >= 0, got {self.g}")
        if self.algorithm == "ncsj":
            self.g = 0
        self.g = int(self.g)

    @property
    def family(self) -> str:
        return FAMILIES[self.algorithm][0]

    @property
    def compact(self) -> bool:
        return FAMILIES[self.algorithm][1]

    def label(self) -> str:
        """The algorithm label recorded on the JoinResult (matches serial)."""
        if self.algorithm == "csj":
            return f"csj({self.g})" if self.g else "ncsj"
        if self.algorithm == "egrid-csj":
            return f"egrid-csj({self.g})" if self.g else "egrid-ncsj"
        if self.algorithm == "pbsm-csj":
            return f"pbsm-csj({self.g})" if self.g else "pbsm-ncsj"
        return self.algorithm

    def build_state(self) -> "TaskState":
        """Materialise the canonical task sequence (deterministic)."""
        return TaskState(self)


class TaskState:
    """One process's materialisation of a :class:`JoinSpec`.

    Holds the data structures tasks execute against (tree / grid cells /
    partition plan) and the canonical task list.  :meth:`execute` is pure
    with respect to shared join state: it touches no sink and no group
    window, so any process may run any task in any order.
    """

    def __init__(self, spec: JoinSpec):
        self.spec = spec
        self.points = spec.points
        self.metric = get_metric(spec.metric)
        self.eps = spec.eps
        self.compact = spec.compact
        self.family = spec.family
        # Effective merge window: non-compact algorithms never merge.
        self.g = spec.g if spec.compact else 0
        self.home_of: Optional[np.ndarray] = None

        if self.family == "tree":
            from repro.api import build_index  # deferred: api imports core
            from repro.resilience.checkpoint import _enumerate_tree_tasks

            self.tree = build_index(
                spec.points,
                spec.index,
                metric=self.metric,
                max_entries=spec.max_entries,
                bulk=spec.bulk,
            )
            self.tasks = None
            if spec.engine == "vectorized":
                from repro.core.frontier import enumerate_tree_tasks_packed

                self.tasks = enumerate_tree_tasks_packed(
                    self.tree, self.eps, self.compact
                )
            if self.tasks is None:
                self.tasks = _enumerate_tree_tasks(self.tree, self.eps, self.compact)
            self.index_name = type(self.tree).name
        elif self.family == "egrid":
            from repro.resilience.checkpoint import _enumerate_egrid_tasks

            self.tree = None
            self.tasks = _enumerate_egrid_tasks(spec.points, self.eps)
            self.index_name = "egrid"
        else:  # pbsm
            self.tree = None
            if len(spec.points) > 1:
                cells, self.home_of, _ = pbsm_plan(
                    spec.points, self.eps, spec.partitions_per_axis
                )
                self.tasks = [("part", np.asarray(key), ids) for key, ids in cells.items()]
            else:
                self.tasks = []
            self.index_name = "pbsm"

    def __len__(self) -> int:
        return len(self.tasks)

    # ------------------------------------------------------------------
    # Pure execution (workers)
    # ------------------------------------------------------------------
    def execute(self, task_id: int) -> tuple[list, tuple[int, int, int]]:
        """Run one task; returns ``(events, (dc, mbr_checks, early_stops))``.

        Pure: no sink writes, no window mutation, no stats mutation —
        safe to run in any process and to run twice (speculation,
        retries) with identical results.
        """
        task = self.tasks[task_id]
        kind = task[0]
        if self.family == "tree":
            if kind == "group":
                return node_group_delta(self.points, task[1]), (0, 0, 1)
            if kind == "pgroup":
                return pair_group_delta(self.points, task[1], task[2]), (0, 0, 1)
            if kind == "self":
                events, dc = leaf_self_delta(
                    self.points, self.metric, self.eps, task[1].entry_ids, self.g
                )
                return events, (dc, 0, 0)
            events, dc = leaf_cross_delta(
                self.points, self.metric, self.eps,
                task[1].entry_ids, task[2].entry_ids, self.g,
            )
            return events, (dc, 0, 0)
        if self.family == "egrid":
            if kind == "self":
                events, dc, mbr, stops = cell_self_delta(
                    self.points, task[1], self.eps, self.metric, self.compact
                )
            else:
                events, dc, mbr, stops = cell_pair_delta(
                    self.points, task[1], task[2], self.eps, self.metric, self.compact
                )
            return events, (dc, mbr, stops)
        events, dc = partition_delta(
            self.points, task[2], task[1], self.home_of, self.eps,
            self.metric, self.compact,
        )
        return events, (dc, 0, 0)

    # ------------------------------------------------------------------
    # Ordered replay (parent)
    # ------------------------------------------------------------------
    def make_buffer(self, sink: JoinSink, stats: JoinStats) -> Optional[GroupBuffer]:
        """The parent-side merge window (``None`` for plain-link joins)."""
        if not self.compact:
            return None
        dim = self.points.shape[1]
        return GroupBuffer(
            self.g, self.eps, sink, metric=self.metric, stats=stats, dim=dim
        )

    @staticmethod
    def apply(
        events: list,
        counters: tuple[int, int, int],
        sink: JoinSink,
        buffer: Optional[GroupBuffer],
        stats: JoinStats,
    ) -> None:
        """Replay one task's delta into the shared join state (parent only)."""
        dc, mbr, stops = counters
        stats.distance_computations += dc
        stats.mbr_checks += mbr
        stats.early_stops += stops
        apply_events(events, sink, buffer)
