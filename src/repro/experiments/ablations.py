"""Ablation studies beyond the paper's own experiments.

Three design choices called out in DESIGN.md get their own sweeps:

* :func:`run_bulk` — does the bulk-loading method (STR / Hilbert / OMT /
  dynamic insertion) change the compact join's effectiveness?  The paper
  only notes bulk loading exists [22-24]; we quantify its effect.
* :func:`run_capacity` — node capacity sensitivity.  Larger leaves mean
  coarser early stops (groups fire less often but cover more points).
* :func:`run_egrid` — the Section VII extension: epsilon-grid-order with
  and without the compact JoinBuffer modification, versus the tree CSJ.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.csj import csj
from repro.core.egrid import egrid_join
from repro.core.results import CountingSink
from repro.datasets import mg_county, sierpinski_pyramid
from repro.experiments.runner import ExperimentConfig, run_algorithm, scaled
from repro.index.bulk import bulk_load
from repro.index.rstar import RStarTree
from repro.io.writer import width_for

__all__ = ["run_bulk", "run_capacity", "run_egrid", "run_fractal", "run_postprocess"]


def run_bulk(
    n: Optional[int] = None,
    eps: float = 0.1,
    methods: Sequence[str] = ("str", "hilbert", "omt", "dynamic"),
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
) -> list[dict]:
    """CSJ(10) over trees built with each bulk-loading method."""
    config = config or ExperimentConfig()
    points = mg_county(n if n is not None else scaled(5_400), seed=seed)
    rows = []
    for method in methods:
        if method == "dynamic":
            tree = RStarTree(points, max_entries=config.max_entries)
        else:
            tree = bulk_load(
                points,
                method=method,
                tree_class=RStarTree,
                max_entries=config.max_entries,
            )
        for spec in ("ncsj", ("csj", 10)):
            name, g = spec if isinstance(spec, tuple) else (spec, 10)
            row = run_algorithm(name, tree, eps, g=g, config=config)
            row["dataset"] = "mg_county"
            row["n"] = len(points)
            row["bulk"] = method
            row["leaf_count"] = tree.leaf_count()
            rows.append(row)
    return rows


def run_capacity(
    n: Optional[int] = None,
    eps: float = 0.1,
    capacities: Sequence[int] = (8, 16, 32, 64, 128),
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
) -> list[dict]:
    """CSJ(10) and N-CSJ across node capacities."""
    base = config or ExperimentConfig()
    points = mg_county(n if n is not None else scaled(5_400), seed=seed)
    rows = []
    for capacity in capacities:
        cfg = ExperimentConfig(
            index=base.index,
            bulk=base.bulk,
            max_entries=capacity,
            metric=base.metric,
            iterations=base.iterations,
            ssj_byte_budget=base.ssj_byte_budget,
        )
        tree = cfg.build_tree(points)
        for spec in ("ncsj", ("csj", 10)):
            name, g = spec if isinstance(spec, tuple) else (spec, 10)
            row = run_algorithm(name, tree, eps, g=g, config=cfg)
            row["dataset"] = "mg_county"
            row["n"] = len(points)
            row["capacity"] = capacity
            rows.append(row)
    return rows


def run_fractal(
    n: Optional[int] = None,
    eps: float = 2.0**-6,
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
) -> list[dict]:
    """Intrinsic dimensionality vs explosion (the paper's future work).

    Same size, three intrinsic dimensions (line, Sierpinski triangle,
    uniform square): reports estimated D2, pair count at ``eps``, and the
    CSJ(10) compaction, showing that low-D2 data explodes earliest.
    """
    import numpy as np

    from repro.core.bruteforce import count_links
    from repro.datasets import sierpinski_triangle, uniform_points
    from repro.stats.fractal import correlation_dimension

    config = config or ExperimentConfig()
    n = n if n is not None else scaled(6_000)
    rng = np.random.default_rng(seed)
    datasets = {
        "line": np.stack([rng.random(n), np.zeros(n)], axis=1),
        "sierpinski2d": sierpinski_triangle(n, seed=seed),
        "uniform": uniform_points(n, seed=seed),
    }
    rows = []
    for name, points in datasets.items():
        d2 = correlation_dimension(points, 2.0**-8, 2.0**-4, 6).dimension
        pairs = count_links(points, eps)
        tree = config.build_tree(points)
        width = width_for(len(points))
        result = csj(tree, eps, g=10, sink=CountingSink(id_width=width))
        ssj_bytes = pairs * 2 * (width + 1)
        rows.append(
            {
                "dataset": name,
                "n": n,
                "eps": eps,
                "d2": round(d2, 3),
                "pairs": pairs,
                "ssj_bytes": ssj_bytes,
                "csj_bytes": result.output_bytes,
                "compaction": round(ssj_bytes / max(result.output_bytes, 1), 2),
            }
        )
    return rows


def run_postprocess(
    n: Optional[int] = None,
    eps: float = 0.03,
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
) -> list[dict]:
    """Section II-C quantified: clustering post-processing vs compact join.

    Each clustering baseline (k-means, k-medoids, single-linkage, BIRCH)
    is used as a would-be compact representation; the table reports how
    many pairs it wrongly implies (Theorem 2 failures) and how many
    qualifying links it drops (Theorem 1 failures), against CSJ(10)'s
    zero/zero.
    """
    from repro.baselines.postprocess import evaluate_postprocessing
    from repro.datasets import gaussian_clusters

    n = n if n is not None else scaled(1_500)
    points = gaussian_clusters(n, seed=seed, n_clusters=8, std=0.012)
    return [dict(row) for row in evaluate_postprocessing(points, eps, seed=seed)]


def run_egrid(
    n: Optional[int] = None,
    query_ranges: Sequence[float] = (0.025, 0.05, 0.1, 0.2),
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
) -> list[dict]:
    """Epsilon-grid-order join, plain vs compact, vs tree-based CSJ(10)."""
    config = config or ExperimentConfig()
    points = sierpinski_pyramid(n if n is not None else scaled(10_000), seed=seed)
    width = width_for(len(points))
    tree = config.build_tree(points)
    rows = []
    for eps in query_ranges:
        for label, runner in (
            ("egrid", lambda e: egrid_join(points, e, compact=False,
                                           sink=CountingSink(id_width=width))),
            ("egrid-csj(10)", lambda e: egrid_join(points, e, compact=True, g=10,
                                                   sink=CountingSink(id_width=width))),
            ("tree-csj(10)", lambda e: csj(tree, e, g=10,
                                           sink=CountingSink(id_width=width))),
        ):
            result = runner(eps)
            row = result.summary()
            row["algorithm"] = label
            row["dataset"] = "sierpinski3d"
            row["n"] = len(points)
            row["estimated"] = False
            rows.append(row)
    return rows
