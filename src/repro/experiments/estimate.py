"""Analytic estimation of exploding SSJ runs.

The paper could not complete SSJ at large query ranges — "Full, black
shapes stand for estimated values, due to crash" (Figures 5 and 7) — and
plots estimates instead.  We reproduce that protocol: before running SSJ
the expected number of links is counted exactly (but cheaply, via SciPy's
dual-tree ``count_neighbors``, which never materialises pairs); if the
output would exceed the configured byte budget the run is *estimated*:

* output bytes: ``links * bytes_per_link`` (exact — the format is fixed
  width);
* runtime: a per-link cost calibrated from the largest completed SSJ run
  of the same sweep, plus that run's traversal baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.bruteforce import count_links
from repro.geometry.metrics import Metric
from repro.io.writer import line_bytes

__all__ = ["SSJEstimate", "estimate_ssj", "RuntimeCalibration"]


@dataclass
class RuntimeCalibration:
    """Per-link and fixed costs measured from a completed SSJ run."""

    seconds_per_link: float
    baseline_seconds: float

    @classmethod
    def from_run(cls, links: int, total_seconds: float) -> "RuntimeCalibration":
        """Calibrate from one completed SSJ run's links and runtime."""
        if links <= 0:
            return cls(seconds_per_link=0.0, baseline_seconds=total_seconds)
        # Attribute 80% of the measured time to per-link work; the
        # remainder is tree traversal that grows far slower than the
        # output.  This mirrors the paper's estimation spirit: output
        # work dominates in the explosion regime.
        return cls(
            seconds_per_link=0.8 * total_seconds / links,
            baseline_seconds=0.2 * total_seconds,
        )


@dataclass
class SSJEstimate:
    """Predicted measurements for an SSJ run that was not executed."""

    links: int
    output_bytes: int
    total_time: float


def estimate_ssj(
    points: np.ndarray,
    eps: float,
    id_width: int,
    metric: Optional[Metric] = None,
    calibration: Optional[RuntimeCalibration] = None,
    precounted_links: Optional[int] = None,
) -> SSJEstimate:
    """Estimate the SSJ output size (and optionally runtime) at ``eps``."""
    links = (
        precounted_links
        if precounted_links is not None
        else count_links(points, eps, metric)
    )
    output_bytes = links * line_bytes(2, id_width)
    if calibration is None:
        total_time = float("nan")
    else:
        total_time = (
            calibration.baseline_seconds + calibration.seconds_per_link * links
        )
    return SSJEstimate(links=links, output_bytes=output_bytes, total_time=total_time)
