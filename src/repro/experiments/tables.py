"""Plain-text table rendering for experiment rows."""

from __future__ import annotations

import math
from typing import Optional, Sequence

__all__ = ["format_table", "format_rows"]


def _render(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[dict],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render rows of dictionaries as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_render(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "-" * len(header)
    body = "\n".join(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line))
        for line in cells
    )
    parts = [title, header, rule, body] if title else [header, rule, body]
    return "\n".join(parts)


def format_rows(rows: Sequence[dict], title: str = "") -> str:
    """Shorthand: format with the standard experiment column set."""
    columns = [
        c
        for c in (
            "dataset",
            "n",
            "algorithm",
            "g",
            "eps",
            "links",
            "groups",
            "output_bytes",
            "total_time",
            "compute_time",
            "write_time",
            "early_stops",
            "estimated",
        )
        if any(c in row for row in rows)
    ]
    return format_table(rows, columns=columns, title=title)
