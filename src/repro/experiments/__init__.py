"""Experiment harness reproducing the paper's evaluation (Section VI).

One module per paper artifact:

* :mod:`repro.experiments.fig5` — Experiment 1: time and output size vs
  query range, four datasets, SSJ / N-CSJ / CSJ(10);
* :mod:`repro.experiments.fig6` — Experiment 1b: CSJ(g) for
  g in {1..100} on MG-County-like data;
* :mod:`repro.experiments.fig7` — Experiment 2: scalability with the
  number of Sierpinski3D points at eps = 0.125;
* :mod:`repro.experiments.fig8` — Experiment 3: computation vs disk-write
  time split;
* :mod:`repro.experiments.exp4` — Experiment 4: different tree structures;
* :mod:`repro.experiments.ablations` — our additional studies (bulk
  loading, node capacity, epsilon-grid-order extension).

Every module exposes ``run(...) -> list[dict]`` returning one row per
measured point, and the CLI prints them as tables.  Like the paper, runs
whose output would explode beyond a byte budget are *estimated* instead of
executed (the paper's filled "crashed" symbols); estimated rows carry
``estimated=True``.
"""

from repro.experiments.runner import (
    DEFAULT_QUERY_RANGES,
    ExperimentConfig,
    run_algorithm,
    run_suite,
)
from repro.experiments.tables import format_table

__all__ = [
    "ExperimentConfig",
    "run_algorithm",
    "run_suite",
    "DEFAULT_QUERY_RANGES",
    "format_table",
]
