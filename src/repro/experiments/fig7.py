"""Experiment 2 / Figure 7: scalability with the number of data points.

Sierpinski3D point counts grow at a fixed query range ``eps = 0.125``.
Expected shape: SSJ's runtime and output size grow quadratically (an
output explosion — the paper's largest points are estimates because they
exceeded free disk space), while N-CSJ and CSJ(10) grow near-linearly.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.datasets import sierpinski_pyramid
from repro.experiments.runner import ExperimentConfig, run_algorithm, scaled

__all__ = ["DEFAULT_SIZES", "run"]

#: Point-count ladder (the paper goes to 5e5; scaled down by default).
DEFAULT_SIZES: tuple[int, ...] = (1_000, 2_000, 5_000, 10_000, 20_000, 50_000)


def run(
    sizes: Optional[Sequence[int]] = None,
    eps: float = 0.125,
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
) -> list[dict]:
    """Sweep dataset size at fixed ``eps``; one row per (n, algorithm)."""
    config = config or ExperimentConfig()
    sizes = [scaled(s) for s in (sizes or DEFAULT_SIZES)]
    rows: list[dict] = []
    for n in sizes:
        points = sierpinski_pyramid(n, seed=seed)
        tree = config.build_tree(points)
        calibration = None
        for spec in ("ssj", "ncsj", ("csj", 10)):
            name, g = spec if isinstance(spec, tuple) else (spec, 10)
            row = run_algorithm(name, tree, eps, g=g, config=config)
            row["dataset"] = "sierpinski3d"
            row["n"] = n
            rows.append(row)
    return rows
