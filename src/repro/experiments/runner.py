"""Shared experiment machinery: configs, single runs, and sweeps.

The paper's measurement protocol (Section VI): runtime from algorithm
start until the last output tuple is written, output size in bytes of the
fixed-width text file, nine query ranges log-spaced between ``2**-9`` and
``1/2``, 25 iterations per configuration.  We keep the protocol but make
iteration counts and dataset sizes configurable (pure Python is ~100x
slower than the authors' C++), and we guard SSJ behind a byte budget with
the paper's estimate-on-crash fallback (:mod:`repro.experiments.estimate`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.csj import csj
from repro.core.results import CountingSink, JoinResult, TextSink
from repro.core.ssj import ssj
from repro.errors import BudgetExceededError
from repro.experiments.estimate import RuntimeCalibration, estimate_ssj
from repro.index import SpatialIndex
from repro.io.writer import width_for
from repro.resilience.budget import Budget

__all__ = [
    "DEFAULT_QUERY_RANGES",
    "ExperimentConfig",
    "run_algorithm",
    "run_suite",
    "scaled",
]

#: The paper's nine query ranges, equally spaced on a log scale between
#: 2**-9 and 1/2 (Section VI).
DEFAULT_QUERY_RANGES: tuple[float, ...] = tuple(
    float(2.0 ** e) for e in np.linspace(-9.0, -1.0, 9)
)


def scaled(n: int) -> int:
    """Apply the global size multiplier ``REPRO_SCALE`` (default 1.0).

    Benchmarks honour this environment variable so the full paper-scale
    runs (``REPRO_SCALE=5`` and beyond) use the same code path as the
    quick default ones.
    """
    return max(4, int(n * float(os.environ.get("REPRO_SCALE", "1.0"))))


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiment drivers."""

    #: Index to build ("rtree" / "rstar" / "mtree").
    index: str = "rstar"
    #: Bulk loading method, or None for one-by-one insertion.
    bulk: Optional[str] = "str"
    #: Node capacity.
    max_entries: int = 64
    #: Metric specification.
    metric: object = None
    #: Repetitions per measurement (paper: 25; default lighter).
    iterations: int = 3
    #: SSJ runs whose exact output would exceed this many bytes are
    #: estimated instead of executed (the paper's crashed points).  The
    #: same cap is enforced *during* the run via a
    #: :class:`~repro.resilience.budget.Budget`, so a mis-estimated run
    #: degrades to the estimator instead of exploding.
    ssj_byte_budget: int = 40_000_000
    #: Optional wall-clock deadline per single run (seconds); a breach
    #: reports the partial measurements instead of hanging the sweep.
    deadline_seconds: Optional[float] = None
    #: Write output to a real file (TextSink) instead of counting only.
    write_output: bool = False
    #: Directory for TextSink files when ``write_output`` is set.
    output_dir: str = "."
    #: Execute measured runs across a supervised worker pool of this
    #: size (None / 0 / 1 stays serial).  Output is byte-identical to the
    #: serial run, so measurements remain comparable.
    workers: Optional[int] = None
    #: Per-task wall-clock limit in the worker pool.
    task_timeout: Optional[float] = None

    def build_tree(self, points: np.ndarray) -> SpatialIndex:
        """Build the configured index over ``points``."""
        from repro.api import build_index

        return build_index(
            points,
            self.index,
            metric=self.metric,
            max_entries=self.max_entries,
            bulk=self.bulk if self.index != "mtree" else None,
        )


def _make_sink(config: ExperimentConfig, n_points: int, tag: str):
    width = width_for(n_points)
    if config.write_output:
        path = os.path.join(config.output_dir, f"join_output_{tag}.txt")
        return TextSink(path, id_width=width)
    return CountingSink(id_width=width)


def run_algorithm(
    algorithm: str,
    tree: SpatialIndex,
    eps: float,
    g: int = 10,
    config: Optional[ExperimentConfig] = None,
    calibration: Optional[RuntimeCalibration] = None,
    precounted_links: Optional[int] = None,
) -> dict:
    """Run (or estimate) one algorithm at one query range; return a row.

    ``algorithm`` is ``"ssj"``, ``"ncsj"`` or ``"csj"``.  SSJ is replaced
    by an analytic estimate when its exact output size would exceed the
    configured byte budget, mirroring the paper's crashed data points.
    """
    config = config or ExperimentConfig()
    n = tree.size
    width = width_for(n)

    if algorithm == "ssj":
        estimate = estimate_ssj(
            tree.points,
            eps,
            width,
            metric=tree.metric,
            calibration=calibration,
            precounted_links=precounted_links,
        )
        if estimate.output_bytes > config.ssj_byte_budget:
            return {
                "algorithm": "ssj",
                "eps": eps,
                "g": None,
                "links": estimate.links,
                "groups": 0,
                "output_bytes": estimate.output_bytes,
                "total_time": estimate.total_time,
                "compute_time": float("nan"),
                "write_time": float("nan"),
                "distance_computations": None,
                "early_stops": 0,
                "estimated": True,
            }

    best: Optional[JoinResult] = None
    for iteration in range(max(1, config.iterations)):
        sink = _make_sink(config, n, f"{algorithm}_{eps:g}_{iteration}")
        budget = Budget(
            deadline_seconds=config.deadline_seconds,
            max_output_bytes=config.ssj_byte_budget if algorithm == "ssj" else None,
        )
        try:
            if config.workers is not None and config.workers > 1:
                if algorithm not in ("ssj", "ncsj", "csj"):
                    raise ValueError(f"unknown algorithm {algorithm!r}")
                # The pool rebuilds the index per worker from the recipe,
                # so the prebuilt tree only supplies the points here.
                from repro.api import similarity_join

                result = similarity_join(
                    tree.points,
                    eps,
                    algorithm=algorithm,
                    g=g,
                    index=config.index,
                    metric=config.metric,
                    sink=sink,
                    max_entries=config.max_entries,
                    bulk=config.bulk if config.index != "mtree" else None,
                    budget=budget,
                    workers=config.workers,
                    task_timeout=config.task_timeout,
                )
            elif algorithm == "ssj":
                result = ssj(tree, eps, sink=sink, budget=budget)
            elif algorithm == "ncsj":
                result = csj(
                    tree, eps, g=0, sink=sink, budget=budget,
                    _algorithm_label="ncsj",
                )
            elif algorithm == "csj":
                result = csj(tree, eps, g=g, sink=sink, budget=budget)
            else:
                raise ValueError(f"unknown algorithm {algorithm!r}")
        except BudgetExceededError as exc:
            # Deadline breach: report the valid partial measurements
            # rather than hanging the sweep (SSJ byte breaches never land
            # here — they degrade to the estimator inside ssj()).
            result = exc.partial
        sink.close()
        if best is None or result.stats.total_time < best.stats.total_time:
            best = result

    return best.summary()


def run_suite(
    points: np.ndarray,
    query_ranges: Sequence[float],
    algorithms: Sequence[Union[str, tuple[str, int]]] = ("ssj", "ncsj", ("csj", 10)),
    config: Optional[ExperimentConfig] = None,
    dataset_name: str = "",
) -> list[dict]:
    """Sweep algorithms over query ranges on one dataset.

    ``algorithms`` entries are names or ``(name, g)`` pairs.  The tree is
    built once and reused (the paper assumes the index is given).  SSJ's
    runtime calibration rolls forward from its largest completed run, so
    estimated points extrapolate from measured ones.
    """
    config = config or ExperimentConfig()
    tree = config.build_tree(points)
    rows: list[dict] = []
    calibration: Optional[RuntimeCalibration] = None
    for eps in query_ranges:
        for spec in algorithms:
            name, g = spec if isinstance(spec, tuple) else (spec, 10)
            row = run_algorithm(
                name, tree, eps, g=g, config=config, calibration=calibration
            )
            row["dataset"] = dataset_name
            row["n"] = len(points)
            rows.append(row)
            if name == "ssj" and not row["estimated"] and row["links"]:
                calibration = RuntimeCalibration.from_run(
                    row["links"], row["total_time"]
                )
    return rows
