"""Experiment 3 / Figure 8: computation versus disk-write time.

On MG County at ``eps = 0.1`` the paper splits each algorithm's runtime
into computation and output writing for SSJ, N-CSJ, CSJ(1), CSJ(10) and
CSJ(100), and additionally reports that the number of index page / cache
accesses does not differ significantly between the algorithms.  Expected
shape: most of the compact joins' advantage is *computation* saved by the
early-stopping rule; a moderate part is the smaller output file.

This driver writes real output files through
:class:`~repro.core.results.TextSink` (so write time is genuine I/O) and
replays the index traversal against the simulated LRU page cache of
:mod:`repro.io.pagesim` for the access counts.
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional

from repro.core.csj import csj
from repro.core.results import TextSink
from repro.core.ssj import ssj
from repro.datasets import mg_county
from repro.experiments.runner import ExperimentConfig, scaled
from repro.io.pagesim import NodePager, PageCache
from repro.io.writer import width_for

__all__ = ["VARIANTS", "run"]

#: The paper's five bars: algorithm name and g (None for SSJ).
VARIANTS: tuple[tuple[str, Optional[int]], ...] = (
    ("ssj", None),
    ("ncsj", 0),
    ("csj", 1),
    ("csj", 10),
    ("csj", 100),
)


def run(
    n: Optional[int] = None,
    eps: float = 0.1,
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
    output_dir: Optional[str] = None,
    cache_pages: int = 256,
) -> list[dict]:
    """Measure the compute/write split for the five Figure 8 variants."""
    config = config or ExperimentConfig()
    points = mg_county(n if n is not None else scaled(5_400), seed=seed)
    tree = config.build_tree(points)
    width = width_for(len(points))
    own_dir = output_dir is None
    directory = output_dir or tempfile.mkdtemp(prefix="csj_fig8_")
    rows: list[dict] = []
    try:
        for name, g in VARIANTS:
            label = name if g is None or name == "ncsj" else f"csj({g})"
            path = os.path.join(directory, f"fig8_{label}.txt")
            pager = NodePager(tree, PageCache(cache_pages))
            with TextSink(path, id_width=width) as sink:
                if name == "ssj":
                    result = ssj(tree, eps, sink=sink, pager=pager)
                else:
                    result = csj(
                        tree,
                        eps,
                        g=g,
                        sink=sink,
                        pager=pager,
                        _algorithm_label=label,
                    )
            file_bytes = os.path.getsize(path)
            rows.append(
                {
                    "dataset": "mg_county",
                    "n": len(points),
                    "algorithm": label,
                    "g": g,
                    "eps": eps,
                    "compute_time": result.stats.compute_time,
                    "write_time": result.stats.write_time,
                    "total_time": result.stats.total_time,
                    "output_bytes": result.stats.bytes_written,
                    "file_bytes": file_bytes,
                    "page_reads": result.stats.page_reads,
                    "cache_hits": result.stats.cache_hits,
                    "links": result.stats.links_emitted,
                    "groups": result.stats.groups_emitted,
                }
            )
            if own_dir:
                os.remove(path)
    finally:
        if own_dir:
            try:
                os.rmdir(directory)
            except OSError:
                pass
    return rows
