"""Experiment 4: different underlying tree structures (Section VI-D).

The only requirement the algorithms place on the index is the ability to
bound the minimum and maximum distance between subtrees; the paper runs
the joins over R*-trees, R-trees and Metric trees and finds "no
significant difference in any of the performance measures".  This driver
reproduces that comparison — same data, same ranges, three indexes — and
also verifies the outputs of all indexes imply the *same* link set.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.csj import csj
from repro.core.results import CollectSink
from repro.core.ssj import ssj
from repro.datasets import mg_county
from repro.experiments.runner import ExperimentConfig, run_algorithm, scaled
from repro.io.writer import width_for

__all__ = ["INDEXES", "run"]

INDEXES: tuple[str, ...] = ("rstar", "rtree", "mtree")


def run(
    n: Optional[int] = None,
    query_ranges: Sequence[float] = (0.05, 0.1, 0.2),
    indexes: Sequence[str] = INDEXES,
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
    check_agreement: bool = True,
) -> list[dict]:
    """Run SSJ/N-CSJ/CSJ(10) over each index structure.

    With ``check_agreement`` the CSJ outputs of all indexes are expanded
    and compared pairwise at the smallest range (cheap) — a cross-index
    consistency check beyond the paper's.
    """
    base = config or ExperimentConfig()
    points = mg_county(n if n is not None else scaled(2_700), seed=seed)
    rows: list[dict] = []
    expansions: dict[str, set] = {}
    for index in indexes:
        cfg = ExperimentConfig(
            index=index,
            bulk=base.bulk if index != "mtree" else None,
            max_entries=base.max_entries,
            metric=base.metric,
            iterations=base.iterations,
            ssj_byte_budget=base.ssj_byte_budget,
        )
        tree = cfg.build_tree(points)
        for eps in query_ranges:
            for spec in ("ssj", "ncsj", ("csj", 10)):
                name, g = spec if isinstance(spec, tuple) else (spec, 10)
                row = run_algorithm(name, tree, eps, g=g, config=cfg)
                row["dataset"] = "mg_county"
                row["n"] = len(points)
                row["index"] = index
                rows.append(row)
        if check_agreement:
            sink = CollectSink(id_width=width_for(len(points)))
            expansions[index] = csj(
                tree, min(query_ranges), g=10, sink=sink
            ).expanded_links()
    if check_agreement and len(expansions) > 1:
        reference = next(iter(expansions.values()))
        for index, links in expansions.items():
            if links != reference:
                raise AssertionError(
                    f"index {index} implies a different link set "
                    f"({len(links)} vs {len(reference)} links)"
                )
    return rows
