"""Experiment 1 / Figure 5: time and output size versus query range.

For each of the four datasets and each of nine query ranges (log-spaced in
``[2**-9, 1/2]``) the paper compares SSJ, N-CSJ and CSJ(10) on runtime
(left column) and output size (right column).  Expected shape:

1. N-CSJ is never worse than SSJ; strictly better at large ranges.
2. CSJ(10) wins everywhere, with ~2x output over N-CSJ at large ranges.
3. The divergence point between SSJ and the compact joins shifts with
   dataset size and density.
4. SSJ "crashes" (exceeds the byte budget) at the largest ranges and is
   plotted as an estimate.

Dataset sizes default to laptop-friendly values and scale with the
``REPRO_SCALE`` environment variable (see
:func:`repro.experiments.runner.scaled`).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.datasets import lb_county, mg_county, pacific_nw, sierpinski_pyramid
from repro.experiments.runner import (
    DEFAULT_QUERY_RANGES,
    ExperimentConfig,
    run_suite,
    scaled,
)

__all__ = ["DATASETS", "run", "run_dataset"]

#: Figure 5's four datasets with paper sizes scaled down 1/5 by default
#: (Pacific NW 1/15; see DESIGN.md on Python-vs-C++ scaling).
DATASETS = {
    "mg_county": (mg_county, 5_400),
    "lb_county": (lb_county, 7_200),
    "sierpinski3d": (sierpinski_pyramid, 20_000),
    "pacific_nw": (pacific_nw, 100_000),
}

#: Pacific NW uses smaller ranges in the paper (its x axis stops around
#: 2**-2); we keep the shared grid but cap it for feasibility.
_PACIFIC_MAX_EPS = 2.0 ** -4


def run_dataset(
    name: str,
    n: Optional[int] = None,
    query_ranges: Sequence[float] = DEFAULT_QUERY_RANGES,
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
) -> list[dict]:
    """Run the Figure 5 sweep for one named dataset."""
    generator, default_n = DATASETS[name]
    n = n if n is not None else scaled(default_n)
    points = generator(n, seed=seed)
    if name == "pacific_nw":
        query_ranges = [e for e in query_ranges if e <= _PACIFIC_MAX_EPS]
    return run_suite(
        points,
        query_ranges,
        algorithms=("ssj", "ncsj", ("csj", 10)),
        config=config,
        dataset_name=name,
    )


def run(
    datasets: Optional[Sequence[str]] = None,
    config: Optional[ExperimentConfig] = None,
) -> list[dict]:
    """Run the full Figure 5 grid; returns one row per (dataset, eps, alg)."""
    rows: list[dict] = []
    for name in datasets or DATASETS:
        rows.extend(run_dataset(name, config=config))
    return rows
