"""Experiment 1b / Figure 6: CSJ(g) as a function of the window size g.

On the MG County data the paper sweeps ``g`` over
{1, 2, 3, 4, 5, 10, 20, 50, 100} at a fixed query range, finding that

* output shrinks ~20% from g=1 to g~10 and flattens beyond, and
* runtime grows mildly (roughly linearly) with g,

leading to the recommended sweet spot ``g ~ 10``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.datasets import mg_county
from repro.experiments.runner import ExperimentConfig, run_algorithm, scaled

__all__ = ["G_VALUES", "run"]

#: The paper's window sizes.
G_VALUES: tuple[int, ...] = (1, 2, 3, 4, 5, 10, 20, 50, 100)


def run(
    n: Optional[int] = None,
    eps: float = 0.1,
    g_values: Sequence[int] = G_VALUES,
    config: Optional[ExperimentConfig] = None,
    seed: int = 0,
) -> list[dict]:
    """Sweep CSJ(g) over ``g_values`` on MG-County-like data."""
    config = config or ExperimentConfig()
    points = mg_county(n if n is not None else scaled(5_400), seed=seed)
    tree = config.build_tree(points)
    rows = []
    for g in g_values:
        row = run_algorithm("csj", tree, eps, g=g, config=config)
        row["dataset"] = "mg_county"
        row["n"] = len(points)
        rows.append(row)
    return rows
