"""The R*-tree of Beckmann, Kriegel, Schneider and Seeger [5].

The paper's experiments use an R*-tree by default (the UC Riverside Spatial
Index Library); this module reimplements the three R* heuristics on top of
the Guttman machinery in :mod:`repro.index.rtree`:

* **ChooseSubtree** — at the level just above the leaves the child is
  picked by least *overlap* enlargement (ties: least area enlargement),
  instead of least area enlargement alone;
* **Forced reinsertion** — the first time a node overflows at each level
  during one insertion, the 30% of its entries farthest from the node
  center are removed and re-inserted, which re-shapes bad nodes instead of
  splitting them;
* **R\\* split** — the split axis minimises the summed margins of the
  candidate distributions, and the chosen distribution along that axis
  minimises overlap (ties: total area).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.mbr import MBR
from repro.index.rtree import RectNode, RTree

__all__ = ["RStarTree"]


class RStarTree(RTree):
    """R*-tree: Guttman R-tree with the Beckmann et al. heuristics."""

    name = "rstar"
    #: Fraction of a node's entries removed on forced reinsertion.
    reinsert_fraction = 0.3

    def __init__(
        self,
        points: np.ndarray,
        metric: object = None,
        max_entries: int = 64,
        min_fill: float = 0.4,
        shuffle_seed: Optional[int] = None,
    ):
        self._reinserted_levels: set[int] = set()
        super().__init__(
            points,
            metric,
            max_entries,
            min_fill,
            split="quadratic",  # placeholder; _split is overridden below
            shuffle_seed=shuffle_seed,
        )

    # ------------------------------------------------------------------
    # Insertion with forced reinsert
    # ------------------------------------------------------------------
    def insert(self, pid: int) -> None:
        """Insert point id ``pid`` with R* overflow treatment."""
        # Forced reinsertion applies once per level per top-level insert
        # ("the first call at each level during one data insertion").
        self._reinserted_levels = set()
        self._deleted.discard(pid)
        self._insert_entry(pid, self.points[pid], target_level=0)

    def _insert_entry(self, pid, point, target_level: int, subtree=None) -> None:
        """Insert a point (or a whole subtree during reinsertion)."""
        if self.root is None:
            self.root = RectNode(level=0, mbr=MBR.of_point(point))
            self.root.entry_ids.append(pid)
            return
        split = self._rstar_insert(self.root, pid, point, target_level, subtree)
        if split is not None:
            self._grow_root(split)

    def _rstar_insert(
        self, node: RectNode, pid, point, target_level: int, subtree
    ) -> Optional[RectNode]:
        node.invalidate_cache()
        mbr_add = subtree.mbr if subtree is not None else MBR.of_point(point)
        node.mbr = mbr_add.copy() if node.mbr is None else node.mbr
        node.mbr.extend_mbr(mbr_add)
        if node.level == target_level:
            if subtree is not None:
                node.children.append(subtree)
            else:
                node.entry_ids.append(pid)
            if node.fanout > self.max_entries:
                return self._overflow(node)
            return None
        child = self._choose_subtree_rstar(node, mbr_add)
        split = self._rstar_insert(child, pid, point, target_level, subtree)
        if split is not None:
            node.children.append(split)
            if len(node.children) > self.max_entries:
                return self._overflow(node)
        return None

    def _choose_subtree_rstar(self, node: RectNode, mbr_add: MBR) -> RectNode:
        children = node.children
        if children[0].is_leaf:
            # Least overlap enlargement; ties by area enlargement, then
            # area.  This is the O(k^2) part of every insertion, so the
            # candidate overlaps are evaluated as one NumPy batch.
            lows = np.array([c.mbr.lo for c in children])
            highs = np.array([c.mbr.hi for c in children])
            new_lo = np.minimum(lows, mbr_add.lo)
            new_hi = np.maximum(highs, mbr_add.hi)
            areas = np.prod(highs - lows, axis=1)
            enlarged_areas = np.prod(new_hi - new_lo, axis=1)

            def overlap_sums(cand_lo, cand_hi):
                inter_lo = np.maximum(cand_lo[:, None, :], lows[None, :, :])
                inter_hi = np.minimum(cand_hi[:, None, :], highs[None, :, :])
                overlap = np.prod(np.maximum(0.0, inter_hi - inter_lo), axis=2)
                np.fill_diagonal(overlap, 0.0)
                return overlap.sum(axis=1)

            delta_overlap = overlap_sums(new_lo, new_hi) - overlap_sums(lows, highs)
            order = np.lexsort((areas, enlarged_areas - areas, delta_overlap))
            return children[int(order[0])]
        # Internal levels: least area enlargement, ties by area.
        best, best_key = None, None
        for child in children:
            enlarged = child.mbr.union(mbr_add)
            key = (enlarged.area() - child.mbr.area(), child.mbr.area())
            if best_key is None or key < best_key:
                best, best_key = child, key
        return best

    def _overflow(self, node: RectNode) -> Optional[RectNode]:
        """OverflowTreatment: forced reinsert once per level, else split."""
        if node is not self.root and node.level not in self._reinserted_levels:
            self._reinserted_levels.add(node.level)
            self._forced_reinsert(node)
            return None
        return self._split(node)

    def _forced_reinsert(self, node: RectNode) -> None:
        items, mbrs = self._node_items(node)
        center = node.mbr.center
        dists = [self.metric.norm(m.center - center) for m in mbrs]
        order = np.argsort(dists)  # farthest entries are reinserted
        n_reinsert = max(1, int(round(self.reinsert_fraction * len(items))))
        keep = [items[i] for i in order[: len(items) - n_reinsert]]
        evicted = [items[i] for i in order[len(items) - n_reinsert:]]
        self._assign_items(node, keep)
        node.recompute_mbr(self.points)
        # Re-insert far entries first ("reinsert in distant order" variant).
        for item in reversed(evicted):
            if node.is_leaf:
                pid = int(item)
                self._insert_entry(pid, self.points[pid], target_level=0)
            else:
                child: RectNode = item
                self._insert_entry(
                    None, child.mbr.center, target_level=node.level, subtree=child
                )

    # ------------------------------------------------------------------
    # R* split
    # ------------------------------------------------------------------
    def _split(self, node: RectNode) -> RectNode:
        items, mbrs = self._node_items(node)
        group_a, group_b = self._rstar_partition(mbrs)
        sibling = RectNode(level=node.level)
        self._assign_items(node, [items[i] for i in group_a])
        self._assign_items(sibling, [items[i] for i in group_b])
        node.recompute_mbr(self.points)
        sibling.recompute_mbr(self.points)
        node.invalidate_cache()
        return sibling

    def _rstar_partition(self, mbrs: list[MBR]) -> tuple[list[int], list[int]]:
        n = len(mbrs)
        dim = mbrs[0].dim
        m = self.min_entries
        lows = np.array([r.lo for r in mbrs])
        highs = np.array([r.hi for r in mbrs])

        def distributions(order: np.ndarray):
            """All (k, left, right) splits honouring the minimum fill."""
            for k in range(m, n - m + 1):
                left = [int(i) for i in order[:k]]
                right = [int(i) for i in order[k:]]
                yield left, right

        def cover(idx: list[int]) -> MBR:
            return MBR(lows[idx].min(axis=0), highs[idx].max(axis=0))

        # ChooseSplitAxis: minimise the margin sum over both sortings.
        best_axis, best_margin, axis_orders = 0, np.inf, None
        for axis in range(dim):
            orders = (
                np.lexsort((highs[:, axis], lows[:, axis])),
                np.lexsort((lows[:, axis], highs[:, axis])),
            )
            margin_sum = 0.0
            for order in orders:
                for left, right in distributions(order):
                    margin_sum += cover(left).margin() + cover(right).margin()
            if margin_sum < best_margin:
                best_axis, best_margin, axis_orders = axis, margin_sum, orders

        # ChooseSplitIndex: minimise overlap, ties by total area.
        best_key, best_split = None, None
        for order in axis_orders:
            for left, right in distributions(order):
                box_l, box_r = cover(left), cover(right)
                key = (box_l.overlap_area(box_r), box_l.area() + box_r.area())
                if best_key is None or key < best_key:
                    best_key, best_split = key, (left, right)
        assert best_split is not None, f"no valid split for {n} entries"
        return best_split

    # Deletion inherits Guttman's CondenseTree from RTree; the reinsert
    # bookkeeping must be reset so deletions can trigger fresh inserts.
    # Tombstone accounting lives in SpatialIndex.delete — identical for
    # every tree.
    def _remove(self, pid: int) -> bool:
        """Structural removal (Guttman CondenseTree + R* reinserts)."""
        self._reinserted_levels = set()
        return super()._remove(pid)
