"""Guttman's R-tree [4] with linear and quadratic node splits.

This is the classic dynamic R-tree: points are inserted one at a time,
each descent choosing the child whose MBR needs the least enlargement;
overflowing nodes are split with either Guttman's quadratic or linear
algorithm.  Deletion uses the CondenseTree re-insertion scheme.

The node type, :class:`RectNode`, implements the geometric contract of
:class:`repro.index.base.IndexNode` with minimum bounding rectangles, so
every distance bound is a constant-time MBR computation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.mbr import MBR
from repro.geometry.metrics import Metric
from repro.index.base import IndexNode, SpatialIndex

__all__ = ["RectNode", "RTree"]


class RectNode(IndexNode):
    """An R-tree node bounded by an :class:`~repro.geometry.mbr.MBR`."""

    __slots__ = ("mbr",)

    def __init__(self, level: int, mbr: Optional[MBR] = None):
        super().__init__(level)
        self.mbr = mbr

    # -- geometric contract -------------------------------------------------
    def diameter(self, metric: Metric) -> float:
        return self.mbr.diagonal(metric)

    def min_dist(self, other: IndexNode, metric: Metric) -> float:
        return self.mbr.min_dist(other.mbr, metric)

    def union_diameter(self, other: IndexNode, metric: Metric) -> float:
        return self.mbr.union_diagonal(other.mbr, metric)

    def min_dist_point(self, point: np.ndarray, metric: Metric) -> float:
        return self.mbr.min_dist_point(point, metric)

    def covers(self, child: IndexNode) -> bool:
        return self.mbr.contains_mbr(child.mbr)

    def covers_point(self, point: np.ndarray, metric: Metric) -> bool:
        return self.mbr.contains_point(point)

    def recompute_mbr(self, points: np.ndarray) -> None:
        """Tighten the MBR to exactly cover the children / entries."""
        if self.is_leaf:
            self.mbr = MBR.of_points(points[np.asarray(self.entry_ids, dtype=np.intp)])
        else:
            self.mbr = MBR.of_mbrs(child.mbr for child in self.children)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "node"
        return f"RectNode({kind}, level={self.level}, fanout={self.fanout})"


class RTree(SpatialIndex):
    """A dynamic Guttman R-tree over a fixed point array.

    Parameters
    ----------
    points:
        ``(n, d)`` float array; row index is the point id.
    metric:
        Any :func:`repro.geometry.metrics.get_metric` spec (default L2).
    max_entries, min_fill:
        Node capacity ``M`` and minimum fill fraction ``m / M``.
    split:
        ``"quadratic"`` (default) or ``"linear"`` — Guttman's two split
        algorithms.
    """

    name = "rtree"
    _SPLITS = ("quadratic", "linear")

    def __init__(
        self,
        points: np.ndarray,
        metric: object = None,
        max_entries: int = 64,
        min_fill: float = 0.4,
        split: str = "quadratic",
        shuffle_seed: Optional[int] = None,
    ):
        if split not in self._SPLITS:
            raise ValueError(f"split must be one of {self._SPLITS}, got {split!r}")
        self.split_method = split
        self.shuffle_seed = shuffle_seed
        super().__init__(points, metric, max_entries, min_fill)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        self.root = RectNode(level=0, mbr=None)
        order = np.arange(len(self.points))
        if self.shuffle_seed is not None:
            rng = np.random.default_rng(self.shuffle_seed)
            rng.shuffle(order)
        for pid in order:
            self.insert(int(pid))

    @classmethod
    def from_packed_root(
        cls,
        points: np.ndarray,
        root: RectNode,
        metric: object = None,
        max_entries: int = 64,
        min_fill: float = 0.4,
    ) -> "RTree":
        """Wrap a bulk-loaded node hierarchy (see :mod:`repro.index.bulk`)."""
        from repro.geometry.metrics import get_metric

        tree = cls.__new__(cls)
        tree.split_method = "quadratic"
        tree.shuffle_seed = None
        tree.metric = get_metric(metric)
        tree.max_entries = int(max_entries)
        tree.min_entries = max(1, int(max_entries * min_fill))
        tree.root = root
        tree._init_dynamic_state(np.asarray(points, dtype=float))
        return tree

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, pid: int) -> None:
        """Insert the point with id ``pid`` (a row of :attr:`points`)."""
        self._deleted.discard(pid)
        point = self.points[pid]
        if self.root is None:
            self.root = RectNode(level=0, mbr=MBR.of_point(point))
            self.root.entry_ids.append(pid)
            return
        split = self._insert_into(self.root, pid, point)
        if split is not None:
            self._grow_root(split)

    def _grow_root(self, sibling: RectNode) -> None:
        old_root = self.root
        new_root = RectNode(level=old_root.level + 1)
        new_root.children = [old_root, sibling]
        new_root.mbr = old_root.mbr.union(sibling.mbr)
        self.root = new_root

    def _insert_into(
        self, node: RectNode, pid: int, point: np.ndarray
    ) -> Optional[RectNode]:
        """Recursive insert; returns the new sibling if ``node`` split."""
        node.invalidate_cache()
        if node.mbr is None:
            node.mbr = MBR.of_point(point)
        else:
            node.mbr.extend_point(point)
        if node.is_leaf:
            node.entry_ids.append(pid)
            if len(node.entry_ids) > self.max_entries:
                return self._split(node)
            return None
        child = self._choose_subtree(node, point)
        split = self._insert_into(child, pid, point)
        if split is not None:
            node.children.append(split)
            if len(node.children) > self.max_entries:
                return self._split(node)
        return None

    def _choose_subtree(self, node: RectNode, point: np.ndarray) -> RectNode:
        """Guttman's ChooseLeaf: least enlargement, ties by least area."""
        best = None
        best_key = None
        for child in node.children:
            enlarged = child.mbr.union_point(point)
            key = (enlarged.area() - child.mbr.area(), child.mbr.area())
            if best_key is None or key < best_key:
                best, best_key = child, key
        return best

    # ------------------------------------------------------------------
    # Splitting
    # ------------------------------------------------------------------
    def _split(self, node: RectNode) -> RectNode:
        """Split an overflowing node in place; return the new sibling."""
        items, mbrs = self._node_items(node)
        if self.split_method == "quadratic":
            group_a, group_b = self._quadratic_partition(mbrs)
        else:
            group_a, group_b = self._linear_partition(mbrs)
        sibling = RectNode(level=node.level)
        self._assign_items(node, [items[i] for i in group_a])
        self._assign_items(sibling, [items[i] for i in group_b])
        node.recompute_mbr(self.points)
        sibling.recompute_mbr(self.points)
        node.invalidate_cache()
        return sibling

    def _node_items(self, node: RectNode):
        """The node's entries as (item, MBR) parallel lists."""
        if node.is_leaf:
            items = list(node.entry_ids)
            mbrs = [MBR.of_point(self.points[pid]) for pid in items]
        else:
            items = list(node.children)
            mbrs = [child.mbr for child in items]
        return items, mbrs

    def _assign_items(self, node: RectNode, items: list) -> None:
        if node.is_leaf:
            node.entry_ids = list(items)
            node.children = []
        else:
            node.children = list(items)
            node.entry_ids = []
        node.invalidate_cache()

    def _quadratic_partition(self, mbrs: list[MBR]) -> tuple[list[int], list[int]]:
        """Guttman's quadratic split: seeds maximise dead area, then each
        remaining entry goes to the group with the larger preference."""
        n = len(mbrs)
        # PickSeeds: the pair wasting the most area if grouped together.
        seed_a, seed_b, worst = 0, 1, -np.inf
        for i in range(n):
            for j in range(i + 1, n):
                waste = mbrs[i].union(mbrs[j]).area() - mbrs[i].area() - mbrs[j].area()
                if waste > worst:
                    seed_a, seed_b, worst = i, j, waste
        group_a, group_b = [seed_a], [seed_b]
        cover_a, cover_b = mbrs[seed_a].copy(), mbrs[seed_b].copy()
        rest = [i for i in range(n) if i not in (seed_a, seed_b)]
        while rest:
            # Honour the minimum fill: if one group must take all the rest.
            if len(group_a) + len(rest) <= self.min_entries:
                for i in rest:
                    group_a.append(i)
                    cover_a.extend_mbr(mbrs[i])
                break
            if len(group_b) + len(rest) <= self.min_entries:
                for i in rest:
                    group_b.append(i)
                    cover_b.extend_mbr(mbrs[i])
                break
            # PickNext: maximal difference in enlargement preference.
            best_i, best_pref = rest[0], -1.0
            for i in rest:
                d_a = cover_a.enlargement(mbrs[i])
                d_b = cover_b.enlargement(mbrs[i])
                pref = abs(d_a - d_b)
                if pref > best_pref:
                    best_i, best_pref = i, pref
            rest.remove(best_i)
            d_a = cover_a.enlargement(mbrs[best_i])
            d_b = cover_b.enlargement(mbrs[best_i])
            take_a = d_a < d_b or (
                d_a == d_b
                and (
                    cover_a.area() < cover_b.area()
                    or (cover_a.area() == cover_b.area() and len(group_a) <= len(group_b))
                )
            )
            if take_a:
                group_a.append(best_i)
                cover_a.extend_mbr(mbrs[best_i])
            else:
                group_b.append(best_i)
                cover_b.extend_mbr(mbrs[best_i])
        return group_a, group_b

    def _linear_partition(self, mbrs: list[MBR]) -> tuple[list[int], list[int]]:
        """Guttman's linear split: seeds by greatest normalised separation."""
        n = len(mbrs)
        lows = np.array([m.lo for m in mbrs])
        highs = np.array([m.hi for m in mbrs])
        width = highs.max(axis=0) - lows.min(axis=0)
        width[width == 0.0] = 1.0
        # For each dimension: entry with highest low side and lowest high side.
        hi_low = lows.argmax(axis=0)
        lo_high = highs.argmin(axis=0)
        separation = (lows[hi_low, np.arange(lows.shape[1])]
                      - highs[lo_high, np.arange(lows.shape[1])]) / width
        axis = int(np.argmax(separation))
        seed_a, seed_b = int(lo_high[axis]), int(hi_low[axis])
        if seed_a == seed_b:  # all rectangles identical along every axis
            seed_b = (seed_a + 1) % n
        group_a, group_b = [seed_a], [seed_b]
        cover_a, cover_b = mbrs[seed_a].copy(), mbrs[seed_b].copy()
        for i in range(n):
            if i in (seed_a, seed_b):
                continue
            remaining = n - len(group_a) - len(group_b)
            if len(group_a) + remaining <= self.min_entries:
                group_a.append(i)
                cover_a.extend_mbr(mbrs[i])
                continue
            if len(group_b) + remaining <= self.min_entries:
                group_b.append(i)
                cover_b.extend_mbr(mbrs[i])
                continue
            if cover_a.enlargement(mbrs[i]) <= cover_b.enlargement(mbrs[i]):
                group_a.append(i)
                cover_a.extend_mbr(mbrs[i])
            else:
                group_b.append(i)
                cover_b.extend_mbr(mbrs[i])
        return group_a, group_b

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def _remove(self, pid: int) -> bool:
        """Structural removal of ``pid`` (tombstones handled by the base).

        Uses Guttman's CondenseTree: underflowing nodes along the path are
        dissolved and their contents re-inserted.
        """
        if self.root is None:
            return False
        path = self._find_leaf(self.root, pid, self.points[pid])
        if path is None:
            return False
        leaf = path[-1]
        leaf.entry_ids.remove(pid)
        self._condense(path)
        # Shrink the root if it lost structure.
        while (
            self.root is not None
            and not self.root.is_leaf
            and len(self.root.children) == 1
        ):
            self.root = self.root.children[0]
        if self.root is not None and self.root.is_leaf and not self.root.entry_ids:
            self.root.mbr = None
        return True

    def _find_leaf(
        self, node: RectNode, pid: int, point: np.ndarray
    ) -> Optional[list[RectNode]]:
        if node.mbr is None or not node.mbr.contains_point(point):
            return None
        if node.is_leaf:
            return [node] if pid in node.entry_ids else None
        for child in node.children:
            sub = self._find_leaf(child, pid, point)
            if sub is not None:
                return [node] + sub
        return None

    def _condense(self, path: list[RectNode]) -> None:
        orphan_leaf_ids: list[int] = []
        orphan_nodes: list[RectNode] = []
        for depth in range(len(path) - 1, 0, -1):
            node, parent = path[depth], path[depth - 1]
            node.invalidate_cache()
            if node.fanout < self.min_entries:
                parent.children.remove(node)
                if node.is_leaf:
                    orphan_leaf_ids.extend(node.entry_ids)
                else:
                    orphan_nodes.extend(node.children)
            elif node.fanout > 0:
                node.recompute_mbr(self.points)
        root = path[0]
        root.invalidate_cache()
        if root.fanout > 0:
            root.recompute_mbr(self.points)
        for orphan in orphan_nodes:
            self._reinsert_subtree(orphan)
        for pid in orphan_leaf_ids:
            self.insert(pid)

    def _reinsert_subtree(self, node: RectNode) -> None:
        for pid in node.subtree_ids():
            self.insert(int(pid))
