"""Index persistence: save and load built trees.

The paper assumes "the data is given in a standard tree data structure"
— in a database the index lives on disk between queries.  This module
serialises any of the library's trees (R-tree, R*-tree, M-tree) to a
single ``.npz`` file and restores it structurally identical: same nodes,
same bounding shapes, same entry order, so joins and queries on the
loaded tree produce byte-identical output.

Format: the node hierarchy is flattened in pre-order into parallel NumPy
arrays (levels, parent indices, bounding shapes, leaf-entry spans) plus
the point array and scalar metadata.  Only named metrics are
serialisable; trees over :class:`~repro.core.metricspace.ObjectMetric`
carry a Python callable and must be rebuilt instead.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.geometry.mbr import MBR
from repro.geometry.metrics import get_metric
from repro.index.base import SpatialIndex
from repro.index.mtree import BallNode, MTree
from repro.index.rstar import RStarTree
from repro.index.rtree import RectNode, RTree

__all__ = ["save_index", "load_index"]

_CLASSES = {"rtree": RTree, "rstar": RStarTree, "mtree": MTree}


def save_index(tree: SpatialIndex, path: str) -> None:
    """Serialise ``tree`` to ``path`` (a ``.npz`` file).

    >>> import numpy as np, tempfile, os
    >>> from repro.index.bulk import bulk_load
    >>> tree = bulk_load(np.random.default_rng(0).random((100, 2)))
    >>> with tempfile.TemporaryDirectory() as d:
    ...     save_index(tree, os.path.join(d, "t.npz"))
    ...     loaded = load_index(os.path.join(d, "t.npz"))
    >>> loaded.validate()
    """
    kind = type(tree).name
    if kind not in _CLASSES:
        raise TypeError(f"cannot persist index type {type(tree).__name__}")
    metric_name = tree.metric.name
    if metric_name.startswith("object-"):
        raise TypeError(
            "trees over ObjectMetric carry a Python callable and cannot be "
            "persisted; rebuild them from the objects instead"
        )

    levels: list[int] = []
    parents: list[int] = []
    entry_offsets: list[int] = [0]
    entries: list[int] = []
    rect_lo: list[np.ndarray] = []
    rect_hi: list[np.ndarray] = []
    routers: list[int] = []
    radii: list[float] = []

    def walk(node, parent_idx: int) -> None:
        my_idx = len(levels)
        levels.append(node.level)
        parents.append(parent_idx)
        if isinstance(node, RectNode):
            rect_lo.append(node.mbr.lo)
            rect_hi.append(node.mbr.hi)
        else:
            routers.append(node.router)
            radii.append(node.radius)
        entries.extend(node.entry_ids)
        entry_offsets.append(len(entries))
        for child in node.children:
            walk(child, my_idx)

    if tree.root is not None:
        walk(tree.root, -1)

    np.savez_compressed(
        path,
        kind=np.array(kind),
        metric=np.array(metric_name),
        max_entries=np.array(tree.max_entries),
        min_entries=np.array(tree.min_entries),
        points=tree.points,
        deleted=np.array(sorted(tree._deleted), dtype=np.int64),
        levels=np.array(levels, dtype=np.int64),
        parents=np.array(parents, dtype=np.int64),
        entry_offsets=np.array(entry_offsets, dtype=np.int64),
        entries=np.array(entries, dtype=np.int64),
        rect_lo=np.array(rect_lo) if rect_lo else np.empty((0, 0)),
        rect_hi=np.array(rect_hi) if rect_hi else np.empty((0, 0)),
        routers=np.array(routers, dtype=np.int64),
        radii=np.array(radii, dtype=float),
    )


def load_index(path: str) -> SpatialIndex:
    """Restore a tree saved by :func:`save_index`."""
    with np.load(path, allow_pickle=False) as data:
        kind = str(data["kind"])
        cls = _CLASSES.get(kind)
        if cls is None:
            raise ValueError(f"unknown index kind {kind!r} in {path}")
        metric = get_metric(str(data["metric"]))
        points = data["points"]
        max_entries = int(data["max_entries"])
        min_entries = int(data["min_entries"])
        levels = data["levels"]
        parents = data["parents"]
        entry_offsets = data["entry_offsets"]
        entries = data["entries"]
        is_rect = kind in ("rtree", "rstar")
        rect_lo, rect_hi = data["rect_lo"], data["rect_hi"]
        routers, radii = data["routers"], data["radii"]
        deleted = set(int(i) for i in data["deleted"])

    tree = cls.__new__(cls)
    tree.points = points
    tree.metric = metric
    tree.max_entries = max_entries
    tree.min_entries = min_entries
    tree._deleted = deleted
    if is_rect:
        tree.split_method = "quadratic"
        tree.shuffle_seed = None
    else:
        tree.shuffle_seed = None
    if kind == "rstar":
        tree._reinserted_levels = set()

    nodes: list[Union[RectNode, BallNode]] = []
    for i in range(len(levels)):
        if is_rect:
            node = RectNode(int(levels[i]), MBR(rect_lo[i], rect_hi[i]))
        else:
            node = BallNode(int(levels[i]), int(routers[i]), float(radii[i]))
            node.center = points[int(routers[i])]
        node.entry_ids = [int(e) for e in entries[entry_offsets[i]:entry_offsets[i + 1]]]
        nodes.append(node)
        parent = int(parents[i])
        if parent >= 0:
            nodes[parent].children.append(node)
    tree.root = nodes[0] if nodes else None
    return tree
