"""Index persistence: save and load built trees.

The paper assumes "the data is given in a standard tree data structure"
— in a database the index lives on disk between queries.  This module
serialises any of the library's trees (R-tree, R*-tree, M-tree) to a
single ``.npz`` file and restores it structurally identical: same nodes,
same bounding shapes, same entry order, so joins and queries on the
loaded tree produce byte-identical output.

Format: the node hierarchy is flattened in pre-order into parallel NumPy
arrays (levels, parent indices, bounding shapes, leaf-entry spans) plus
the point array and scalar metadata.  Only named metrics are
serialisable; trees over :class:`~repro.core.metricspace.ObjectMetric`
carry a Python callable and must be rebuilt instead.
"""

from __future__ import annotations

import os
import zipfile
from typing import Union

import numpy as np

from repro.errors import CheckpointCorruptError
from repro.geometry.mbr import MBR
from repro.geometry.metrics import get_metric
from repro.index.base import SpatialIndex
from repro.index.mtree import BallNode, MTree
from repro.index.rstar import RStarTree
from repro.index.rtree import RectNode, RTree
from repro.io.durable import best_effort_fsync_dir, get_fs

__all__ = ["save_index", "load_index"]

_CLASSES = {"rtree": RTree, "rstar": RStarTree, "mtree": MTree}

#: Every array the format requires; a file missing any of them is corrupt.
_REQUIRED_KEYS = (
    "kind", "metric", "max_entries", "min_entries", "points", "deleted",
    "levels", "parents", "entry_offsets", "entries", "rect_lo", "rect_hi",
    "routers", "radii",
)


def save_index(tree: SpatialIndex, path: str) -> None:
    """Serialise ``tree`` to ``path`` (a ``.npz`` file), atomically.

    The arrays are written to a sibling temp file, fsynced, moved into
    place with ``os.replace`` and made durable with a parent-directory
    fsync — a crash at any point leaves ``path`` either holding the
    previous intact index or the complete new one, never a torn prefix
    (historically a crash mid-save truncated a previously good file).
    All operations go through the durable-I/O seam
    (:mod:`repro.io.durable`), so the crash-state explorer verifies this
    contract against every enumerated post-crash disk state.

    Unlike ``np.savez``, the file keeps the exact name given — no
    ``.npz`` suffix is appended — so ``load_index(path)`` always reads
    back what ``save_index(tree, path)`` wrote.

    >>> import numpy as np, tempfile, os
    >>> from repro.index.bulk import bulk_load
    >>> tree = bulk_load(np.random.default_rng(0).random((100, 2)))
    >>> with tempfile.TemporaryDirectory() as d:
    ...     save_index(tree, os.path.join(d, "t.npz"))
    ...     loaded = load_index(os.path.join(d, "t.npz"))
    >>> loaded.validate()
    """
    kind = type(tree).name
    if kind not in _CLASSES:
        raise TypeError(f"cannot persist index type {type(tree).__name__}")
    metric_name = tree.metric.name
    if metric_name.startswith("object-"):
        raise TypeError(
            "trees over ObjectMetric carry a Python callable and cannot be "
            "persisted; rebuild them from the objects instead"
        )

    levels: list[int] = []
    parents: list[int] = []
    entry_offsets: list[int] = [0]
    entries: list[int] = []
    rect_lo: list[np.ndarray] = []
    rect_hi: list[np.ndarray] = []
    routers: list[int] = []
    radii: list[float] = []

    def walk(node, parent_idx: int) -> None:
        my_idx = len(levels)
        levels.append(node.level)
        parents.append(parent_idx)
        if isinstance(node, RectNode):
            rect_lo.append(node.mbr.lo)
            rect_hi.append(node.mbr.hi)
        else:
            routers.append(node.router)
            radii.append(node.radius)
        entries.extend(node.entry_ids)
        entry_offsets.append(len(entries))
        for child in node.children:
            walk(child, my_idx)

    if tree.root is not None:
        walk(tree.root, -1)

    fs = get_fs()
    path = os.fspath(path)
    tmp_path = path + ".tmp"
    with fs.open(tmp_path, "wb") as handle:
        np.savez_compressed(
            handle,
            kind=np.array(kind),
            metric=np.array(metric_name),
            max_entries=np.array(tree.max_entries),
            min_entries=np.array(tree.min_entries),
            points=tree.points,
            deleted=np.array(sorted(tree._deleted), dtype=np.int64),
            levels=np.array(levels, dtype=np.int64),
            parents=np.array(parents, dtype=np.int64),
            entry_offsets=np.array(entry_offsets, dtype=np.int64),
            entries=np.array(entries, dtype=np.int64),
            rect_lo=np.array(rect_lo) if rect_lo else np.empty((0, 0)),
            rect_hi=np.array(rect_hi) if rect_hi else np.empty((0, 0)),
            routers=np.array(routers, dtype=np.int64),
            radii=np.array(radii, dtype=float),
        )
        fs.fsync(handle)
    fs.replace(tmp_path, path)
    best_effort_fsync_dir(os.path.dirname(os.path.abspath(path)), fs)


def _check_structure(
    kind, points, levels, parents, entry_offsets, entries,
    rect_lo, rect_hi, routers, radii,
) -> None:
    """Validate the flattened hierarchy before rebuilding nodes.

    Raises ``ValueError`` (converted to ``CheckpointCorruptError`` by the
    caller) so a truncated array set fails loudly instead of producing a
    silently wrong tree.
    """
    n_nodes = len(levels)
    if len(parents) != n_nodes:
        raise ValueError(f"{n_nodes} levels but {len(parents)} parents")
    if len(entry_offsets) != n_nodes + 1:
        raise ValueError(
            f"{n_nodes} nodes need {n_nodes + 1} entry offsets, "
            f"got {len(entry_offsets)}"
        )
    if n_nodes and int(entry_offsets[-1]) != len(entries):
        raise ValueError(
            f"entry offsets end at {int(entry_offsets[-1])} "
            f"but {len(entries)} entries stored"
        )
    if len(entries) and (
        int(entries.min()) < 0 or int(entries.max()) >= len(points)
    ):
        raise ValueError("entry ids out of range of the point array")
    for i in range(n_nodes):
        parent = int(parents[i])
        if (i == 0 and parent != -1) or (i > 0 and not 0 <= parent < i):
            raise ValueError(f"node {i} has invalid pre-order parent {parent}")
    if kind in ("rtree", "rstar"):
        if len(rect_lo) != n_nodes or len(rect_hi) != n_nodes:
            raise ValueError(
                f"{n_nodes} nodes but {len(rect_lo)}/{len(rect_hi)} rectangles"
            )
    else:
        if len(routers) != n_nodes or len(radii) != n_nodes:
            raise ValueError(
                f"{n_nodes} nodes but {len(routers)} routers / {len(radii)} radii"
            )
        if n_nodes and (
            int(routers.min()) < 0 or int(routers.max()) >= len(points)
        ):
            raise ValueError("router ids out of range of the point array")


def load_index(path: str) -> SpatialIndex:
    """Restore a tree saved by :func:`save_index`.

    A truncated, garbled or structurally inconsistent file raises
    :class:`~repro.errors.CheckpointCorruptError` naming the offending
    path — never a bare unpickling/zip traceback.  A missing file still
    raises ``FileNotFoundError`` (absence is not corruption), and an
    intact file of an unknown index kind keeps its historical
    ``ValueError``.
    """
    try:
        with get_fs().open(path, "rb") as handle:
            with np.load(handle, allow_pickle=False) as data:
                payload = {key: data[key] for key in _REQUIRED_KEYS}
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, KeyError, ValueError, EOFError, OSError) as exc:
        raise CheckpointCorruptError(path, f"unreadable index file: {exc}") from exc

    kind = str(payload["kind"])
    cls = _CLASSES.get(kind)
    if cls is None:
        raise ValueError(f"unknown index kind {kind!r} in {path}")
    try:
        metric = get_metric(str(payload["metric"]))
        points = payload["points"]
        max_entries = int(payload["max_entries"])
        min_entries = int(payload["min_entries"])
        levels = payload["levels"]
        parents = payload["parents"]
        entry_offsets = payload["entry_offsets"]
        entries = payload["entries"]
        is_rect = kind in ("rtree", "rstar")
        rect_lo, rect_hi = payload["rect_lo"], payload["rect_hi"]
        routers, radii = payload["routers"], payload["radii"]
        deleted = set(int(i) for i in payload["deleted"])
        _check_structure(
            kind, points, levels, parents, entry_offsets, entries,
            rect_lo, rect_hi, routers, radii,
        )
    except CheckpointCorruptError:
        raise
    except (TypeError, ValueError, IndexError, KeyError) as exc:
        raise CheckpointCorruptError(path, f"inconsistent index file: {exc}") from exc

    tree = cls.__new__(cls)
    tree.metric = metric
    tree.max_entries = max_entries
    tree.min_entries = min_entries
    tree._init_dynamic_state(points, deleted=deleted)
    if is_rect:
        tree.split_method = "quadratic"
        tree.shuffle_seed = None
    else:
        tree.shuffle_seed = None
    if kind == "rstar":
        tree._reinserted_levels = set()

    nodes: list[Union[RectNode, BallNode]] = []
    for i in range(len(levels)):
        if is_rect:
            node = RectNode(int(levels[i]), MBR(rect_lo[i], rect_hi[i]))
        else:
            node = BallNode(int(levels[i]), int(routers[i]), float(radii[i]))
            node.center = points[int(routers[i])]
        node.entry_ids = [int(e) for e in entries[entry_offsets[i]:entry_offsets[i + 1]]]
        nodes.append(node)
        parent = int(parents[i])
        if parent >= 0:
            nodes[parent].children.append(node)
    tree.root = nodes[0] if nodes else None
    return tree
