"""Structure-of-arrays view of a spatial index for the frontier engine.

The tree indexes store one Python object per node, so any traversal pays
attribute lookups and tiny-array arithmetic per node pair.
:func:`pack_index` flattens a finished tree once per join into level-order
arrays:

::

    nodes      : packed id -> IndexNode        (for pagers / group emission)
    leaf       : (n,) bool                     is node a leaf?
    child_beg/child_end : (n,) intp            children of i are ids
                                               [child_beg[i], child_end[i])
    entry_beg/entry_end : (n,) intp            leaf i's entries are
                                               entries[entry_beg[i]:entry_end[i]]
    entries    : (total_entries,) intp         contiguous leaf entry blocks
    lo, hi     : (n, d) float                  rect kind: MBR corners
    centers    : (n, d) float; radii : (n,)    ball kind: covering balls
    diam       : (n,) float                    node diameters, batched

Packing uses *level-order* numbering, which makes every node's children a
contiguous id range — child geometry blocks are array slices (views), not
gathers.  ``diam`` and all pairwise bounds computed from these arrays are
bit-identical to the per-node scalar methods because the packed rows are
float64 copies of the very arrays those methods read, combined with the
same elementwise operations (see :mod:`repro.geometry.kernels`).

``pack_index`` returns ``None`` whenever the index cannot be packed — an
unknown node type, a mixed-kind tree, or a metric without a vector norm
(e.g. :class:`repro.core.metricspace.ObjectMetric`) — and callers fall
back to the scalar engine.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry import kernels
from repro.geometry.mbr import MBR
from repro.index.base import IndexNode, SpatialIndex

__all__ = [
    "PackedIndex",
    "adopt_packed_arrays",
    "export_packed_arrays",
    "pack_index",
]


class PackedIndex:
    """Flattened (structure-of-arrays) form of one spatial index tree."""

    __slots__ = (
        "kind",
        "points",
        "metric",
        "nodes",
        "leaf",
        "child_beg",
        "child_end",
        "entry_beg",
        "entry_end",
        "entries",
        "lo",
        "hi",
        "centers",
        "radii",
        "diam",
    )

    def __init__(self, kind: str, points: np.ndarray, metric):
        self.kind = kind
        self.points = points
        self.metric = metric
        self.nodes: list[IndexNode] = []
        self.leaf: np.ndarray = None
        self.child_beg: np.ndarray = None
        self.child_end: np.ndarray = None
        self.entry_beg: np.ndarray = None
        self.entry_end: np.ndarray = None
        self.entries: np.ndarray = None
        self.lo: Optional[np.ndarray] = None
        self.hi: Optional[np.ndarray] = None
        self.centers: Optional[np.ndarray] = None
        self.radii: Optional[np.ndarray] = None
        self.diam: np.ndarray = None

    @property
    def n_nodes(self) -> int:
        return len(self.nodes) if self.nodes else len(self.leaf)

    # ------------------------------------------------------------------
    # Id-based entry access (works without the node-object list, e.g. on
    # a worker that adopted the arrays from shared memory)
    # ------------------------------------------------------------------
    def leaf_entry_ids(self, nid: int) -> np.ndarray:
        """Entry ids of leaf ``nid`` (a view into :attr:`entries`)."""
        return self.entries[self.entry_beg[nid] : self.entry_end[nid]]

    def subtree_entry_ids(self, nid: int) -> np.ndarray:
        """All entry ids below ``nid``, in DFS (left-to-right leaf) order.

        Level-order packing keeps each node's children contiguous *and*
        in ``node.children`` order, so this DFS concatenation reproduces
        ``IndexNode.subtree_ids()`` exactly.
        """
        if self.leaf[nid]:
            return self.leaf_entry_ids(nid)
        blocks: list[np.ndarray] = []
        stack = [int(nid)]
        while stack:
            i = stack.pop()
            if self.leaf[i]:
                blocks.append(self.leaf_entry_ids(i))
            else:
                stack.extend(
                    range(int(self.child_end[i]) - 1, int(self.child_beg[i]) - 1, -1)
                )
        if not blocks:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(blocks)

    # ------------------------------------------------------------------
    # Batched pruning over packed node-id selections
    # ------------------------------------------------------------------
    def prune_self(self, beg: int, end: int, eps: float):
        """Surviving ``(a, b)``, ``a < b`` pairs within one child block.

        Returned indices are *local* offsets into ``[beg, end)``, in the
        canonical row-major order of the scalar pair loop.
        """
        if self.kind == "rect":
            return kernels.self_pairs_within(
                self.lo[beg:end], self.hi[beg:end], eps, self.metric
            )
        return kernels.ball_self_pairs_within(
            self.centers[beg:end], self.radii[beg:end], eps, self.metric
        )

    def prune_cross(self, ids1, ids2, eps: float, other: "PackedIndex" = None):
        """Surviving cross pairs between two packed-id selections.

        ``ids1`` / ``ids2`` are packed node ids (arrays or slices) of this
        index and of ``other`` (defaults to self, for self-join descents).
        Returns *local* row/col offsets into the two selections, row-major.
        """
        if other is None:
            other = self
        if self.kind == "rect":
            return kernels.cross_pairs_within(
                self.lo[ids1], self.hi[ids1], other.lo[ids2], other.hi[ids2],
                eps, self.metric,
            )
        return kernels.ball_cross_pairs_within(
            self.centers[ids1], self.radii[ids1],
            other.centers[ids2], other.radii[ids2],
            eps, self.metric,
        )

    def union_diag(self, ids1, ids2, other: "PackedIndex" = None) -> np.ndarray:
        """Union diameters of aligned packed-id pairs (batched
        ``IndexNode.union_diameter``)."""
        if other is None:
            other = self
        if self.kind == "rect":
            return kernels.union_diagonal_pairs(
                self.lo[ids1], self.hi[ids1], other.lo[ids2], other.hi[ids2],
                self.metric,
            )
        return kernels.ball_union_diameter_pairs(
            self.centers[ids1], self.radii[ids1],
            other.centers[ids2], other.radii[ids2],
            self.metric,
        )


def _metric_is_vectorizable(metric, dim: int) -> bool:
    """Probe ``metric.norm_rows`` — object metrics raise, vector ones don't."""
    try:
        out = metric.norm_rows(np.zeros((1, max(dim, 1))))
    except Exception:
        return False
    return isinstance(out, np.ndarray)


def pack_index(index: SpatialIndex) -> Optional[PackedIndex]:
    """Flatten ``index`` into a :class:`PackedIndex`, or ``None``.

    ``None`` signals "use the scalar engine": the tree is empty, its node
    type is not rectangle- or ball-shaped, or its metric has no vector
    norm to batch with.

    The result (including a ``None`` verdict) is memoized on the index,
    keyed by its ``_structure_version``, so repeated joins over an
    unchanged tree — the ``csj serve`` steady state — flatten it once.
    Any structural mutation (``add_point`` / ``delete`` / ``compact``)
    bumps the version and invalidates the memo.
    """
    version = getattr(index, "_structure_version", None)
    if version is not None:
        cached = getattr(index, "_packed_cache", None)
        if cached is not None and cached[0] == version:
            return cached[1]
    packed = _pack_index_uncached(index)
    if version is not None:
        index._packed_cache = (version, packed)
    return packed


def _pack_index_uncached(index: SpatialIndex) -> Optional[PackedIndex]:
    from repro.index.mtree import BallNode
    from repro.index.rtree import RectNode

    root = index.root
    if root is None:
        return None
    if isinstance(root, RectNode):
        kind = "rect"
        node_cls = RectNode
    elif isinstance(root, BallNode):
        kind = "ball"
        node_cls = BallNode
    else:
        return None
    points = index.points
    dim = points.shape[1] if getattr(points, "ndim", 0) == 2 else 0
    if not _metric_is_vectorizable(index.metric, dim):
        return None

    packed = PackedIndex(kind, points, index.metric)
    nodes = packed.nodes
    nodes.append(root)
    # Level-order fill: appending each node's children as a batch numbers
    # them contiguously, so child blocks are slices of the packed arrays.
    i = 0
    while i < len(nodes):
        node = nodes[i]
        if not isinstance(node, node_cls):
            return None  # mixed node kinds: no packed form
        if not node.is_leaf:
            nodes.extend(node.children)
        i += 1

    n = len(nodes)
    packed.leaf = np.empty(n, dtype=bool)
    packed.child_beg = np.zeros(n, dtype=np.intp)
    packed.child_end = np.zeros(n, dtype=np.intp)
    packed.entry_beg = np.zeros(n, dtype=np.intp)
    packed.entry_end = np.zeros(n, dtype=np.intp)
    entry_blocks: list = []
    total_entries = 0
    child_cursor = 1  # node 0 is the root; its children start at id 1
    for nid, node in enumerate(nodes):
        is_leaf = node.is_leaf
        packed.leaf[nid] = is_leaf
        if is_leaf:
            packed.entry_beg[nid] = total_entries
            total_entries += len(node.entry_ids)
            packed.entry_end[nid] = total_entries
            entry_blocks.append(node.entry_ids)
        else:
            packed.child_beg[nid] = child_cursor
            child_cursor += len(node.children)
            packed.child_end[nid] = child_cursor
    packed.entries = (
        np.concatenate([np.asarray(b, dtype=np.intp) for b in entry_blocks])
        if entry_blocks
        else np.empty(0, dtype=np.intp)
    )

    if kind == "rect":
        packed.lo, packed.hi = MBR.stack(node.mbr for node in nodes)
        packed.diam = kernels.diagonal(packed.lo, packed.hi, index.metric)
    else:
        packed.centers = np.empty((n, dim), dtype=float)
        packed.radii = np.empty(n, dtype=float)
        for nid, node in enumerate(nodes):
            packed.centers[nid] = node.center
            packed.radii[nid] = node.radius
        packed.diam = kernels.ball_diameter(packed.radii)
    return packed


#: Array fields shipped through the shared-memory data plane, per kind.
#: (``points`` and ``nodes`` are deliberately absent: points travel in
#: their own segment; the node-object list never leaves the owner.)
_EXPORT_FIELDS = {
    "rect": (
        "leaf", "child_beg", "child_end", "entry_beg", "entry_end",
        "entries", "lo", "hi", "diam",
    ),
    "ball": (
        "leaf", "child_beg", "child_end", "entry_beg", "entry_end",
        "entries", "centers", "radii", "diam",
    ),
}


def export_packed_arrays(
    packed: PackedIndex,
) -> Optional[list[tuple[str, np.ndarray]]]:
    """The packed arrays as an ordered ``(name, array)`` list, or ``None``.

    This is the owner side of the shared-memory data plane: the returned
    arrays are copied verbatim into one segment and rebuilt on workers by
    :func:`adopt_packed_arrays`, so the pair must stay inverse to each
    other field-for-field.
    """
    fields = _EXPORT_FIELDS.get(packed.kind)
    if fields is None:  # pragma: no cover - only rect/ball kinds exist
        return None
    out = []
    for name in fields:
        arr = getattr(packed, name)
        if arr is None:
            return None
        out.append((name, np.ascontiguousarray(arr)))
    return out


def adopt_packed_arrays(
    kind: str, points: np.ndarray, metric, arrays: dict[str, np.ndarray]
) -> PackedIndex:
    """Rebuild a :class:`PackedIndex` over externally provided arrays.

    The inverse of :func:`export_packed_arrays` — used by workers to
    adopt arrays mapped from shared memory without touching the tree
    code.  The resulting index has an empty :attr:`PackedIndex.nodes`
    list; only id-based accessors work, which is all the packed-id task
    path needs.
    """
    fields = _EXPORT_FIELDS[kind]
    missing = [name for name in fields if name not in arrays]
    if missing:
        raise ValueError(f"packed arrays missing fields: {missing}")
    packed = PackedIndex(kind, points, metric)
    for name in fields:
        setattr(packed, name, arrays[name])
    return packed
