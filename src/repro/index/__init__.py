"""Tree index structures: R-tree, R*-tree, M-tree, and bulk loaders.

The compact join algorithms make exactly one assumption about the index
(Section IV and VII of the paper): the *inclusion property* — a parent
node's bounding shape completely covers its children — plus the ability to
compute minimum and maximum distances between two nodes' bounding shapes.
:mod:`repro.index.base` captures that contract; the concrete trees differ
only in their bounding shapes and maintenance heuristics.
"""

from repro.index.base import IndexInvariantError, IndexNode, SpatialIndex
from repro.index.bulk import bulk_load
from repro.index.mtree import MTree
from repro.index.packed import PackedIndex, pack_index
from repro.index.persist import load_index, save_index
from repro.index.rstar import RStarTree
from repro.index.rtree import RTree

__all__ = [
    "SpatialIndex",
    "IndexNode",
    "IndexInvariantError",
    "RTree",
    "RStarTree",
    "MTree",
    "PackedIndex",
    "pack_index",
    "bulk_load",
    "save_index",
    "load_index",
    "get_index_class",
]

_INDEX_CLASSES = {
    "rtree": RTree,
    "r-tree": RTree,
    "rstar": RStarTree,
    "r*tree": RStarTree,
    "r*-tree": RStarTree,
    "mtree": MTree,
    "m-tree": MTree,
}


def get_index_class(name: str) -> type[SpatialIndex]:
    """Resolve an index name (``"rtree"``, ``"rstar"``, ``"mtree"``)."""
    try:
        return _INDEX_CLASSES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown index {name!r}; known: {sorted(set(_INDEX_CLASSES))}"
        ) from None
