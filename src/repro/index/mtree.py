"""The M-tree of Ciaccia, Patella and Zezula [6].

The M-tree indexes data using only the metric itself: every node is a ball
around a *routing object* (an actual data point) with a covering radius.
It demonstrates the paper's index-independence claim (Experiment 4): the
compact join runs unchanged on it because balls support the same three
bounds as rectangles — node diameter, node-pair minimum distance, and
union diameter (see :mod:`repro.geometry.ball`).

Insertion descends to the child whose ball needs the least radius
enlargement; overflowing nodes are split by promoting the two entries with
maximum separation (the ``mM_RAD`` spirit) and partitioning the rest by
proximity (generalised-hyperplane distribution).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.ball import Ball
from repro.geometry.metrics import Metric
from repro.index.base import IndexNode, SpatialIndex

__all__ = ["BallNode", "MTree"]


class BallNode(IndexNode):
    """An M-tree node: a routing point id plus covering radius."""

    __slots__ = ("router", "radius", "center")

    def __init__(self, level: int, router: int, radius: float = 0.0):
        super().__init__(level)
        #: Point id of the routing object (the ball center).
        self.router = router
        #: Covering radius: every point in the subtree is within it.
        self.radius = radius
        #: Resolved center coordinates; the owning tree keeps this in sync
        #: because the node protocol cannot reach the point array itself.
        self.center: Optional[np.ndarray] = None

    def ball(self, points: np.ndarray) -> Ball:
        """This node's covering ball resolved against ``points``."""
        return Ball(points[self.router], self.radius)

    # -- geometric contract -------------------------------------------------
    def diameter(self, metric: Metric) -> float:
        return 2.0 * self.radius

    def min_dist(self, other: IndexNode, metric: Metric) -> float:
        d = metric.distance(self.center, other.center)
        return max(0.0, d - self.radius - other.radius)

    def union_diameter(self, other: IndexNode, metric: Metric) -> float:
        d = metric.distance(self.center, other.center)
        return max(
            2.0 * self.radius,
            2.0 * other.radius,
            d + self.radius + other.radius,
        )

    def min_dist_point(self, point: np.ndarray, metric: Metric) -> float:
        return max(0.0, metric.distance(self.center, point) - self.radius)

    def covers(self, child: IndexNode) -> bool:
        # Validated by MTree.validate() with the actual metric; structural
        # traversals only need a conservative True here — the real check
        # lives in MTree._covers_child.
        return True

    def covers_point(self, point: np.ndarray, metric: Metric) -> bool:
        return metric.distance(self.center, point) <= self.radius + 1e-12

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "node"
        return (
            f"BallNode({kind}, level={self.level}, router={self.router}, "
            f"radius={self.radius:.4g}, fanout={self.fanout})"
        )


class MTree(SpatialIndex):
    """A dynamic M-tree over a fixed point array.

    Works with any :class:`~repro.geometry.metrics.Metric`; coordinates are
    only ever consumed through ``metric.distance``.
    """

    name = "mtree"

    def __init__(
        self,
        points: np.ndarray,
        metric: object = None,
        max_entries: int = 64,
        min_fill: float = 0.4,
        shuffle_seed: Optional[int] = None,
    ):
        self.shuffle_seed = shuffle_seed
        super().__init__(points, metric, max_entries, min_fill)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        order = np.arange(len(self.points))
        if self.shuffle_seed is not None:
            rng = np.random.default_rng(self.shuffle_seed)
            rng.shuffle(order)
        first = int(order[0])
        self.root = self._new_node(level=0, router=first)
        self.root.entry_ids.append(first)
        for pid in order[1:]:
            self.insert(int(pid))

    def _new_node(self, level: int, router: int, radius: float = 0.0) -> BallNode:
        node = BallNode(level=level, router=router, radius=radius)
        node.center = self.points[router]
        return node

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, pid: int) -> None:
        """Insert the point with id ``pid`` (a row of :attr:`points`)."""
        self._deleted.discard(pid)
        if self.root is None:
            self.root = self._new_node(level=0, router=pid)
            self.root.entry_ids.append(pid)
            return
        split = self._insert_into(self.root, pid)
        if split is not None:
            left, right = split
            new_root = self._new_node(
                level=left.level + 1,
                router=left.router,
                radius=0.0,
            )
            new_root.children = [left, right]
            self._tighten(new_root)
            self.root = new_root

    def _insert_into(
        self, node: BallNode, pid: int
    ) -> Optional[tuple[BallNode, BallNode]]:
        """Recursive insert; returns replacement pair if ``node`` split."""
        node.invalidate_cache()
        point = self.points[pid]
        d = self.metric.distance(self.points[node.router], point)
        node.radius = max(node.radius, d)
        if node.is_leaf:
            node.entry_ids.append(pid)
            if len(node.entry_ids) > self.max_entries:
                return self._split_leaf(node)
            return None
        child = self._choose_child(node, point)
        split = self._insert_into(child, pid)
        if split is not None:
            node.children.remove(child)
            node.children.extend(split)
            self._tighten(node)
            if len(node.children) > self.max_entries:
                return self._split_internal(node)
        return None

    def _choose_child(self, node: BallNode, point: np.ndarray) -> BallNode:
        """Prefer a child already covering the point (closest center);
        otherwise the child needing the least radius enlargement."""
        best_in, best_in_d = None, np.inf
        best_out, best_out_grow = None, np.inf
        for child in node.children:
            d = self.metric.distance(self.points[child.router], point)
            if d <= child.radius:
                if d < best_in_d:
                    best_in, best_in_d = child, d
            else:
                grow = d - child.radius
                if grow < best_out_grow:
                    best_out, best_out_grow = child, grow
        return best_in if best_in is not None else best_out

    # ------------------------------------------------------------------
    # Splitting
    # ------------------------------------------------------------------
    def _promote(self, centers: np.ndarray) -> tuple[int, int]:
        """Indices (into ``centers``) of the two promoted routing objects.

        Uses the max-separation pair, approximated in O(n) by two sweeps
        (pick the point farthest from the first, then farthest from that).
        """
        d0 = self.metric.point_to_points(centers[0], centers)
        a = int(np.argmax(d0))
        da = self.metric.point_to_points(centers[a], centers)
        b = int(np.argmax(da))
        if a == b:  # all points identical
            a, b = 0, min(1, len(centers) - 1)
        return a, b

    def _partition(
        self, centers: np.ndarray, a: int, b: int
    ) -> tuple[list[int], list[int]]:
        """Generalised-hyperplane distribution honouring minimum fill."""
        d_a = self.metric.point_to_points(centers[a], centers)
        d_b = self.metric.point_to_points(centers[b], centers)
        group_a, group_b = [], []
        prefer_a = d_a <= d_b
        prefer_a[a], prefer_a[b] = True, False
        for i in range(len(centers)):
            (group_a if prefer_a[i] else group_b).append(i)
        # Rebalance to satisfy the minimum fill, moving border entries.
        # The promoted entries a and b must stay put: they become the
        # routers of their groups, and deletion repair relies on every
        # router living inside its own subtree.
        self._rebalance(group_a, group_b, d_b, keep=a)
        self._rebalance(group_b, group_a, d_a, keep=b)
        return group_a, group_b

    def _rebalance(
        self, donor: list[int], taker: list[int], d_taker: np.ndarray, keep: int
    ) -> None:
        while len(taker) < self.min_entries and len(donor) > self.min_entries:
            # Move the donor entry closest to the taker's router.
            move = min((i for i in donor if i != keep), key=lambda i: d_taker[i])
            donor.remove(move)
            taker.append(move)

    def _split_leaf(self, node: BallNode) -> tuple[BallNode, BallNode]:
        ids = list(node.entry_ids)
        centers = self.points[np.asarray(ids, dtype=np.intp)]
        a, b = self._promote(centers)
        group_a, group_b = self._partition(centers, a, b)
        left = self._new_node(level=0, router=ids[a])
        right = self._new_node(level=0, router=ids[b])
        left.entry_ids = [ids[i] for i in group_a]
        right.entry_ids = [ids[i] for i in group_b]
        for child in (left, right):
            self._tighten(child)
        return left, right

    def _split_internal(self, node: BallNode) -> tuple[BallNode, BallNode]:
        children = list(node.children)
        centers = np.array([self.points[c.router] for c in children])
        a, b = self._promote(centers)
        group_a, group_b = self._partition(centers, a, b)
        left = self._new_node(level=node.level, router=children[a].router)
        right = self._new_node(level=node.level, router=children[b].router)
        left.children = [children[i] for i in group_a]
        right.children = [children[i] for i in group_b]
        for parent in (left, right):
            self._tighten(parent)
        return left, right

    def _tighten(self, node: BallNode) -> None:
        """Recompute the covering radius from children / entries."""
        node.invalidate_cache()
        center = self.points[node.router]
        if node.is_leaf:
            pts = self.points[np.asarray(node.entry_ids, dtype=np.intp)]
            node.radius = float(np.max(self.metric.point_to_points(center, pts)))
        else:
            node.radius = max(
                self.metric.distance(center, self.points[c.router]) + c.radius
                for c in node.children
            )
        node.center = center

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    # The original M-tree paper leaves deletion underspecified because
    # routing objects are data points: removing one would dangle every
    # ball routed through it.  The scheme here mirrors Guttman's
    # CondenseTree and leans on one invariant that construction
    # maintains (see :meth:`_partition`): a node's router always lives
    # in its own subtree.  Hence every node routed by ``pid`` is an
    # ancestor of ``pid``'s leaf and sits on the deletion path, where
    # :meth:`_repair` re-routes it to a surviving entry.

    def _remove(self, pid: int) -> bool:
        """Structural removal of ``pid`` (tombstones handled by the base)."""
        if self.root is None:
            return False
        path = self._find_leaf(self.root, pid)
        if path is None:
            return False
        path[-1].entry_ids.remove(pid)
        self._condense(path, pid)
        return True

    def _find_leaf(self, node: BallNode, pid: int) -> Optional[list[BallNode]]:
        """Root-to-leaf path reaching ``pid``, or None if absent."""
        if node.is_leaf:
            return [node] if pid in node.entry_ids else None
        point = self.points[pid]
        for child in node.children:
            if self.metric.distance(child.center, point) <= child.radius + 1e-12:
                sub = self._find_leaf(child, pid)
                if sub is not None:
                    return [node] + sub
        return None

    def _condense(self, path: list[BallNode], removed_pid: int) -> None:
        """Repair the deletion path bottom-up (CondenseTree analogue).

        Underflowing nodes are dissolved and their points re-inserted;
        surviving nodes get their router replaced if it was the removed
        point, and their covering radius re-tightened.
        """
        orphans: list[int] = []
        for depth in range(len(path) - 1, 0, -1):
            node, parent = path[depth], path[depth - 1]
            node.invalidate_cache()
            if node.fanout < self.min_entries:
                parent.children.remove(node)
                orphans.extend(int(i) for i in node.subtree_ids())
            else:
                self._repair(node, removed_pid)
        root = path[0]
        root.invalidate_cache()
        if root.fanout > 0:
            self._repair(root, removed_pid)
        # Shrink (or drop) the root before re-inserting orphans so the
        # inserts descend a well-formed tree.
        while self.root is not None and not self.root.is_leaf:
            if len(self.root.children) == 1:
                self.root = self.root.children[0]
            elif not self.root.children:
                self.root = None
            else:
                break
        if self.root is not None and self.root.is_leaf and not self.root.entry_ids:
            self.root = None
        for orphan in orphans:
            self.insert(orphan)

    def _repair(self, node: BallNode, removed_pid: int) -> None:
        """Re-route ``node`` off the removed point and re-tighten it."""
        if node.router == removed_pid:
            node.router = (
                node.entry_ids[0] if node.is_leaf else node.children[0].router
            )
        self._tighten(node)

    # Node centers are views into the point array; refresh them when the
    # backing buffer is reallocated so the old buffer can be collected.
    def _points_rebound(self) -> None:
        if self.root is None:
            return
        for node in self.nodes():
            node.center = self.points[node.router]

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Structural validation plus the ball inclusion property."""
        super().validate()
        # Ball inclusion property: every node's covering radius reaches all
        # points of its subtree.  (Insertion does not maintain the stronger
        # nested-routing-ball property — it extends a node's radius only by
        # the new point's distance — and the join bounds need only point
        # coverage.)
        from repro.index.base import IndexInvariantError

        for node in self.nodes():
            ids = node.subtree_ids()
            if not len(ids):
                continue
            dists = self.metric.point_to_points(
                self.points[node.router], self.points[ids]
            )
            if float(dists.max()) > node.radius + 1e-9:
                raise IndexInvariantError(
                    f"M-tree inclusion violated: point at {dists.max():.6g} "
                    f"outside covering radius {node.radius:.6g}"
                )
