"""Bulk loading for the R-tree family: STR, Hilbert packing, and OMT.

The paper notes (Section VII) that without a pre-existing index one must
build a tree before running the join, and that bulk-loading algorithms
[22, 23, 24] make this fast.  Three classic algorithms are provided:

* **STR** (Sort-Tile-Recursive, Garcia/Lopez/Leutenegger [22]): recursively
  tile the data set into vertical slabs per dimension;
* **Hilbert packing**: sort points along the Hilbert curve and cut the
  order into consecutive leaves (Kamel & Faloutsos style packing);
* **OMT** (Overlap-Minimising Top-down, Lee & Lee [24]): top-down
  partitioning that fills the root first, producing well-shaped trees even
  when the point count is far from a power of the fanout.

All three produce :class:`~repro.index.rtree.RectNode` hierarchies wrapped
in the requested tree class, so the joins and queries are oblivious to how
the tree was built.  Packed trees remain fully dynamic — later inserts and
deletes use the wrapper class's own heuristics.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from repro.geometry.curves import hilbert_sort, morton_sort
from repro.geometry.mbr import MBR
from repro.index.rstar import RStarTree
from repro.index.rtree import RectNode, RTree

__all__ = ["str_pack", "hilbert_pack", "omt_pack", "bulk_load"]


def _leaf_of(ids: np.ndarray, points: np.ndarray) -> RectNode:
    node = RectNode(level=0, mbr=MBR.of_points(points[ids]))
    node.entry_ids = [int(i) for i in ids]
    return node


def _even_chunks(ids: np.ndarray, max_size: int) -> list[np.ndarray]:
    """Split ``ids`` into near-equal consecutive chunks of at most
    ``max_size`` elements.  Even sizing (rather than greedy full chunks)
    keeps every chunk at least half full, which preserves the trees'
    minimum-fill invariant."""
    n_chunks = max(1, math.ceil(len(ids) / max_size))
    return [c for c in np.array_split(ids, n_chunks) if len(c)]


def _pack_upward(nodes: list[RectNode], fanout: int) -> RectNode:
    """Stack consecutive runs of nodes into parents until one root remains.

    Consecutive order is whatever the caller arranged, so spatial locality
    of the input order is preserved level by level.  Parents are evenly
    sized so no node falls below half fill."""
    level = nodes[0].level
    while len(nodes) > 1:
        level += 1
        parents = []
        for chunk_idx in _even_chunks(np.arange(len(nodes)), fanout):
            chunk = [nodes[i] for i in chunk_idx]
            parent = RectNode(level=level, mbr=MBR.of_mbrs(c.mbr for c in chunk))
            parent.children = chunk
            parents.append(parent)
        nodes = parents
    return nodes[0]


def str_pack(points: np.ndarray, leaf_capacity: int = 64, fanout: int = 64) -> RectNode:
    """Sort-Tile-Recursive packing; returns the root node.

    Points are tiled into ``n / capacity`` leaves using ``d`` rounds of
    sorting: slice the set into slabs along axis 0, slice each slab along
    axis 1, and so on, so each leaf covers a near-square tile.
    """
    pts = np.asarray(points, dtype=float)
    n, dim = pts.shape

    def tile(ids: np.ndarray, axis: int) -> list[np.ndarray]:
        order = ids[np.argsort(pts[ids, axis], kind="stable")]
        if axis == dim - 1:
            return _even_chunks(order, leaf_capacity)
        leaves_here = math.ceil(len(ids) / leaf_capacity)
        # Number of slabs along this axis: the (d - axis)-th root of the
        # remaining leaf count, per the STR recurrence.
        slabs = max(1, math.ceil(leaves_here ** (1.0 / (dim - axis))))
        out: list[np.ndarray] = []
        for slab in np.array_split(order, slabs):
            if len(slab):
                out.extend(tile(slab, axis + 1))
        return out

    leaf_ids = tile(np.arange(n), axis=0)
    leaves = [_leaf_of(ids, pts) for ids in leaf_ids if len(ids)]
    return _pack_upward(leaves, fanout)


def hilbert_pack(
    points: np.ndarray,
    leaf_capacity: int = 64,
    fanout: int = 64,
    bits: int = 16,
    curve: str = "hilbert",
) -> RectNode:
    """Hilbert (or Z-order) packed tree; returns the root node."""
    pts = np.asarray(points, dtype=float)
    if curve == "hilbert":
        order = hilbert_sort(pts, bits=bits)
    elif curve in ("morton", "zorder", "z-order"):
        order = morton_sort(pts, bits=bits)
    else:
        raise ValueError(f"unknown curve {curve!r}; use 'hilbert' or 'morton'")
    leaves = [_leaf_of(chunk, pts) for chunk in _even_chunks(order, leaf_capacity)]
    return _pack_upward(leaves, fanout)


def omt_pack(points: np.ndarray, leaf_capacity: int = 64, fanout: int = 64) -> RectNode:
    """Overlap-Minimising Top-down packing [24]; returns the root node.

    The height is fixed up front from the leaf count; at every internal
    node the points are striped into near-square tiles (alternating the
    sort axis with recursion depth) so that each child receives a
    near-equal, spatially coherent share.  Top-down filling keeps every
    node at least half full even when the point count is far from a power
    of the fanout.
    """
    pts = np.asarray(points, dtype=float)
    n, dim = pts.shape
    n_leaves = max(1, math.ceil(n / leaf_capacity))
    height = 1 + (0 if n_leaves == 1 else math.ceil(math.log(n_leaves) / math.log(fanout)))

    def stripe(ids: np.ndarray, k: int, axis: int) -> list[np.ndarray]:
        """Partition ``ids`` into ``k`` near-equal, tile-shaped groups.

        Group sizes follow ``np.array_split`` semantics (they differ by at
        most one), which bounds every group by ``ceil(len / k)`` and hence
        keeps subtree and leaf capacities exact.
        """
        if k == 1:
            return [ids]
        order = ids[np.argsort(pts[ids, axis], kind="stable")]
        sizes = [len(part) for part in np.array_split(np.arange(len(order)), k)]
        slabs = min(k, max(2, math.ceil(k ** (1.0 / dim))))
        counts = [len(part) for part in np.array_split(np.arange(k), slabs)]
        out: list[np.ndarray] = []
        pos = 0
        group_pos = 0
        for count in counts:
            take = sum(sizes[group_pos:group_pos + count])
            out.extend(stripe(order[pos:pos + take], count, (axis + 1) % dim))
            pos += take
            group_pos += count
        return out

    def build(ids: np.ndarray, level: int, axis: int) -> RectNode:
        if level == 0:
            return _leaf_of(ids, pts)
        sub_capacity = leaf_capacity * fanout ** (level - 1)
        k = max(1, math.ceil(len(ids) / sub_capacity))
        children = [
            build(group, level - 1, (axis + 1) % dim)
            for group in stripe(ids, k, axis)
            if len(group)
        ]
        node = RectNode(level=level, mbr=MBR.of_mbrs(c.mbr for c in children))
        node.children = children
        return node

    root = build(np.arange(n), height - 1, axis=0)
    # Collapse single-child chains at the top (possible for tiny inputs).
    while not root.is_leaf and len(root.children) == 1:
        root = root.children[0]
    return root


_PACKERS = {"str": str_pack, "hilbert": hilbert_pack, "omt": omt_pack}


def bulk_load(
    points: np.ndarray,
    method: str = "str",
    tree_class: Union[str, type] = RStarTree,
    metric: object = None,
    max_entries: int = 64,
    min_fill: float = 0.4,
    **packer_kwargs: object,
) -> RTree:
    """Bulk load ``points`` into an R-tree-family index.

    ``method`` is ``"str"``, ``"hilbert"`` or ``"omt"``; ``tree_class`` is
    the wrapper class (or its name) determining later dynamic behaviour.

    >>> import numpy as np
    >>> tree = bulk_load(np.random.default_rng(0).random((500, 2)))
    >>> tree.validate()
    """
    try:
        packer = _PACKERS[method.lower()]
    except KeyError:
        raise ValueError(f"unknown bulk method {method!r}; known: {sorted(_PACKERS)}") from None
    if isinstance(tree_class, str):
        from repro.index import get_index_class

        tree_class = get_index_class(tree_class)
    if not issubclass(tree_class, RTree):
        raise TypeError(
            f"bulk loading builds rectangle trees; {tree_class.__name__} is "
            "not in the R-tree family"
        )
    pts = np.asarray(points, dtype=float)
    if len(pts) == 0:
        root = None
    else:
        root = packer(
            pts, leaf_capacity=max_entries, fanout=max_entries, **packer_kwargs
        )
    return tree_class.from_packed_root(
        pts, root, metric=metric, max_entries=max_entries, min_fill=min_fill
    )
