"""The index contract that the join algorithms rely on.

A tree index satisfies the contract if

1. every node exposes a *bounding shape* obeying the inclusion property
   (parents cover children), and
2. the shape supports three bounds, each computable in constant time:
   an upper bound on the pairwise distance of covered points
   (:meth:`IndexNode.diameter`), a lower bound on the distance between two
   nodes (:meth:`IndexNode.min_dist`), and an upper bound on the pairwise
   distance of points covered by either of two nodes
   (:meth:`IndexNode.union_diameter`).

Those three bounds are the *only* geometric operations in
:mod:`repro.core.ssj` and :mod:`repro.core.csj`; this is what makes the
algorithms index-independent (Experiment 4 of the paper).
"""

from __future__ import annotations

import heapq
import itertools
from abc import ABC, abstractmethod
from typing import Iterator, Optional

import numpy as np

from repro.errors import InvalidInputError
from repro.geometry.metrics import Metric, get_metric

__all__ = ["IndexNode", "SpatialIndex", "IndexInvariantError"]


class IndexInvariantError(AssertionError):
    """Raised by :meth:`SpatialIndex.validate` when a tree is malformed."""


class IndexNode(ABC):
    """A node of a spatial index tree.

    ``level`` is 0 for leaves and increases toward the root.  Leaves hold
    ``entry_ids`` (indices into the tree's point array); internal nodes
    hold ``children``.
    """

    __slots__ = ("level", "children", "entry_ids", "_subtree_ids")

    def __init__(self, level: int):
        self.level = level
        self.children: list["IndexNode"] = []
        self.entry_ids: list[int] = []
        self._subtree_ids: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    @property
    def fanout(self) -> int:
        """Number of direct children (entries for a leaf)."""
        return len(self.entry_ids) if self.is_leaf else len(self.children)

    def subtree_ids(self) -> np.ndarray:
        """All point ids stored in this subtree, cached after first use.

        Caches are invalidated along the insertion path by the trees, so it
        is safe to interleave queries and updates.
        """
        if self._subtree_ids is None:
            if self.is_leaf:
                self._subtree_ids = np.asarray(self.entry_ids, dtype=np.intp)
            else:
                parts = [child.subtree_ids() for child in self.children]
                self._subtree_ids = (
                    np.concatenate(parts) if parts else np.empty(0, dtype=np.intp)
                )
        return self._subtree_ids

    def invalidate_cache(self) -> None:
        """Drop the cached subtree-id array (after structural changes)."""
        self._subtree_ids = None

    def subtree_count(self) -> int:
        """Number of points stored in this subtree."""
        return int(self.subtree_ids().shape[0])

    # -- geometric contract -------------------------------------------------
    @abstractmethod
    def diameter(self, metric: Metric) -> float:
        """Upper bound on the distance between any two covered points."""

    @abstractmethod
    def min_dist(self, other: "IndexNode", metric: Metric) -> float:
        """Lower bound on the distance between points of the two nodes."""

    @abstractmethod
    def union_diameter(self, other: "IndexNode", metric: Metric) -> float:
        """Upper bound on pairwise distances over the union of both nodes."""

    @abstractmethod
    def min_dist_point(self, point: np.ndarray, metric: Metric) -> float:
        """Lower bound on the distance from ``point`` to any covered point."""

    @abstractmethod
    def covers(self, child: "IndexNode") -> bool:
        """Inclusion property check: does this node's shape cover ``child``'s?"""

    @abstractmethod
    def covers_point(self, point: np.ndarray, metric: Metric) -> bool:
        """Does this node's bounding shape contain ``point``?"""


class SpatialIndex(ABC):
    """Base class for the tree indexes.

    Subclasses implement :meth:`_build` (and optionally incremental
    maintenance); queries, traversal, statistics and invariant validation
    are provided generically on top of the :class:`IndexNode` contract.
    """

    #: Name used by CLI / experiment tables.
    name: str = "abstract"

    #: Tombstone fraction beyond which :meth:`need_compact` reports True.
    compact_threshold: float = 0.5
    #: Minimum tombstone count before compaction is ever suggested —
    #: small trees are cheaper to carry than to rebuild.
    compact_min_deleted: int = 64

    def __init__(
        self,
        points: np.ndarray,
        metric: object = None,
        max_entries: int = 64,
        min_fill: float = 0.4,
    ):
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2:
            raise ValueError(f"points must be a (n, d) array, got shape {pts.shape}")
        if max_entries < 2:
            raise ValueError(f"max_entries must be >= 2, got {max_entries}")
        if not 0.0 < min_fill <= 0.5:
            raise ValueError(f"min_fill must be in (0, 0.5], got {min_fill}")
        self.metric = get_metric(metric)
        self.max_entries = int(max_entries)
        self.min_entries = max(1, int(max_entries * min_fill))
        self.root: Optional[IndexNode] = None
        self._init_dynamic_state(pts)
        if len(pts):
            self._build()

    def _init_dynamic_state(
        self, points: np.ndarray, deleted: Optional[set[int]] = None
    ) -> None:
        """Install the mutable point-store state.

        Shared by ``__init__`` and the bypass constructors
        (``from_packed_root``, the persistence loader) so every tree —
        however it was built — carries identical update bookkeeping.
        """
        #: Logical point array: row index is the point id.  A view of
        #: :attr:`_backing` so appends are amortised O(1).
        self.points = np.asarray(points, dtype=float)
        self._backing = self.points
        #: Until the first mutating insert the backing array may be the
        #: caller's own array; writes must copy-on-first-write so updates
        #: never corrupt data the caller (or a sibling index) still holds.
        self._owns_backing = False
        #: Row ids removed by delete(); validate() excludes them from the
        #: partition check and add_point() reuses them as free slots.
        self._deleted: set[int] = set(deleted) if deleted else set()
        #: Min-heap mirror of :attr:`_deleted` giving deterministic
        #: (lowest-id-first) slot reuse.  May hold stale entries for ids
        #: resurrected by a direct ``insert``; consumers re-check
        #: membership in :attr:`_deleted`.
        self._free_slots: list[int] = sorted(self._deleted)
        #: Monotonic counter of structural mutations (delete / add_point /
        #: compact / rebuild).  Derived flattened views — the memoized
        #: :func:`repro.index.packed.pack_index` result — key on it, so a
        #: stale pack can never be served after the tree changes shape.
        self._structure_version = getattr(self, "_structure_version", 0) + 1
        #: ``(structure_version, PackedIndex | None)`` memo; see
        #: :func:`repro.index.packed.pack_index`.
        self._packed_cache: Optional[tuple[int, object]] = None

    # -- construction -------------------------------------------------------
    @abstractmethod
    def _build(self) -> None:
        """Populate :attr:`root` from :attr:`points`."""

    # -- incremental maintenance --------------------------------------------
    def insert(self, pid: int) -> None:  # pragma: no cover - interface
        """Insert the point with id ``pid`` (a row of :attr:`points`)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support incremental insertion"
        )

    def _remove(self, pid: int) -> bool:
        """Physically remove ``pid`` from the tree; return whether found.

        Subclasses implement the structural surgery only — tombstone
        bookkeeping is handled uniformly by :meth:`delete`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support deletion"
        )

    def delete(self, pid: int) -> bool:
        """Remove point id ``pid``; returns whether it was found.

        Template method: the concrete tree's :meth:`_remove` does the
        structural work, while the tombstone (:attr:`_deleted`) and the
        free-slot heap are recorded here so every index — R-tree, R*-tree,
        M-tree, and anything future — keeps identical delete bookkeeping.
        """
        pid = int(pid)
        if pid < 0 or pid >= len(self.points) or pid in self._deleted:
            return False
        if not self._remove(pid):
            return False
        self._deleted.add(pid)
        heapq.heappush(self._free_slots, pid)
        self._structure_version += 1
        return True

    def add_point(self, coords: np.ndarray, pid: Optional[int] = None) -> int:
        """Insert a *new* point and return its id.

        Reuses the lowest tombstoned row when one exists (so sustained
        insert/delete churn does not grow the point array without bound);
        otherwise appends with amortised-O(1) capacity doubling.  An
        explicit ``pid`` must name a reusable slot or the append position.
        """
        coords = np.asarray(coords, dtype=float).ravel()
        if len(self.points) and coords.shape != (self.points.shape[1],):
            raise InvalidInputError(
                f"point has dimension {coords.shape[0]}, index holds "
                f"{self.points.shape[1]}-dimensional points"
            )
        if not np.isfinite(coords).all():
            raise InvalidInputError("point coordinates must be finite")
        if pid is not None:
            pid = int(pid)
            if pid != len(self.points) and pid not in self._deleted:
                raise InvalidInputError(
                    f"pid {pid} is neither a free slot nor the append "
                    f"position {len(self.points)}"
                )
        else:
            while self._free_slots:
                candidate = heapq.heappop(self._free_slots)
                if candidate in self._deleted:  # skip stale heap entries
                    pid = candidate
                    break
        if pid is None or pid == len(self.points):
            pid = len(self.points)
            self._grow(pid + 1)
        if not self._owns_backing:
            self._own_backing()
        self.points[pid] = coords
        self._structure_version += 1
        self.insert(pid)
        return pid

    def _grow(self, n: int) -> None:
        """Extend the logical point array to ``n`` rows."""
        capacity = len(self._backing)
        if n > capacity:
            new_cap = max(n, 2 * capacity, 8)
            dim = self.points.shape[1] if self.points.ndim == 2 else 1
            backing = np.empty((new_cap, dim), dtype=float)
            backing[: len(self.points)] = self.points
            self._backing = backing
            self.points = self._backing[:n]
            self._owns_backing = True
            self._points_rebound()
        else:
            self.points = self._backing[:n]

    def _own_backing(self) -> None:
        """Copy-on-first-write: take ownership of the backing buffer.

        Constructors adopt the caller's array without copying (queries
        never mutate it); the first slot write must detach from it, or
        reusing a tombstoned row would silently corrupt the caller's
        data.
        """
        n = len(self.points)
        self._backing = self.points.copy()
        self.points = self._backing[:n]
        self._owns_backing = True
        self._points_rebound()

    def _points_rebound(self) -> None:
        """Hook: the backing buffer was reallocated (or replaced).

        Trees that cache views into :attr:`points` (the M-tree's node
        centers) refresh them here so the old buffer can be collected.
        """

    def need_compact(self) -> bool:
        """Whether tombstones warrant a physical :meth:`compact`."""
        n_deleted = len(self._deleted)
        return (
            n_deleted >= self.compact_min_deleted
            and n_deleted >= self.compact_threshold * len(self.points)
        )

    def compact(self) -> dict[int, int]:
        """Drop tombstoned rows, rebuild, and return the id remapping.

        Live rows keep their relative order but are renumbered densely
        from 0, so *every external id reference must be remapped* with
        the returned ``{old_id: new_id}`` dictionary.  Clears
        :attr:`_deleted` and releases the freed memory.
        """
        live = [i for i in range(len(self.points)) if i not in self._deleted]
        mapping = {old: new for new, old in enumerate(live)}
        pts = np.ascontiguousarray(self.points[live])
        self.root = None
        self._init_dynamic_state(pts)
        self._owns_backing = True  # fancy indexing above made a fresh copy
        self._points_rebound()
        if len(pts):
            self._build()
        return mapping

    # -- generic queries ----------------------------------------------------
    def range_query(self, point: np.ndarray, radius: float) -> np.ndarray:
        """Ids of stored points with distance strictly below ``radius``.

        Strict inequality matches the join semantics used throughout the
        paper's pseudo-code ("distance ... < range").
        """
        p = np.asarray(point, dtype=float)
        if self.root is None:
            return np.empty(0, dtype=np.intp)
        hits: list[np.ndarray] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.min_dist_point(p, self.metric) >= radius:
                continue
            if node.is_leaf:
                ids = np.asarray(node.entry_ids, dtype=np.intp)
                dists = self.metric.point_to_points(p, self.points[ids])
                hits.append(ids[dists < radius])
            else:
                stack.extend(node.children)
        if not hits:
            return np.empty(0, dtype=np.intp)
        return np.sort(np.concatenate(hits))

    def nearest(self, point: np.ndarray, k: int = 1) -> np.ndarray:
        """Ids of the ``k`` nearest stored points, closest first.

        Classic best-first (branch-and-bound) search: nodes are expanded
        in order of their minimum possible distance and pruned once ``k``
        candidates closer than the node's bound are known.  Ties are
        broken by id for determinism.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if self.root is None:
            return np.empty(0, dtype=np.intp)
        p = np.asarray(point, dtype=float)
        counter = itertools.count()
        frontier = [(self.root.min_dist_point(p, self.metric), next(counter), self.root)]
        # Max-heap of the best k candidates as (-distance, id).
        best: list[tuple[float, int]] = []
        while frontier:
            bound, _, node = heapq.heappop(frontier)
            # Prune only on a strictly larger bound: a node at exactly the
            # worst distance may still hold an equal-distance smaller id,
            # which the deterministic tie-break prefers.
            if len(best) == k and bound > -best[0][0]:
                break
            if node.is_leaf:
                ids = np.asarray(node.entry_ids, dtype=np.intp)
                if not len(ids):
                    continue
                dists = self.metric.point_to_points(p, self.points[ids])
                for dist, pid in zip(dists.tolist(), ids.tolist()):
                    if len(best) < k:
                        heapq.heappush(best, (-dist, -pid))
                    elif (dist, pid) < (-best[0][0], -best[0][1]):
                        heapq.heapreplace(best, (-dist, -pid))
            else:
                for child in node.children:
                    child_bound = child.min_dist_point(p, self.metric)
                    if len(best) < k or child_bound <= -best[0][0]:
                        heapq.heappush(frontier, (child_bound, next(counter), child))
        ordered = sorted((-nd, -nid) for nd, nid in best)
        return np.array([pid for _, pid in ordered], dtype=np.intp)

    # -- traversal and statistics --------------------------------------------
    def nodes(self) -> Iterator[IndexNode]:
        """Pre-order iterator over all nodes."""
        if self.root is None:
            return
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.children)

    def leaves(self) -> Iterator[IndexNode]:
        """Iterator over leaf nodes."""
        return (node for node in self.nodes() if node.is_leaf)

    @property
    def size(self) -> int:
        """Number of rows in the backing point array."""
        return len(self.points)

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed points."""
        return self.points.shape[1] if self.points.ndim == 2 else 0

    @property
    def height(self) -> int:
        """Number of levels; a single-leaf tree has height 1."""
        return self.root.level + 1 if self.root is not None else 0

    def node_count(self) -> int:
        """Total number of nodes in the tree."""
        return sum(1 for _ in self.nodes())

    def leaf_count(self) -> int:
        """Number of leaf nodes."""
        return sum(1 for _ in self.leaves())

    # -- invariant checking ---------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`IndexInvariantError`.

        Checks: the inclusion property, consistent levels, fanout limits
        (root excepted), and that leaf entries exactly partition the point
        ids.  Used heavily by the test suite after random update sequences.
        """
        if len(self.points) - len(self._deleted) == 0:
            # No *live* points: deleting every entry legitimately leaves a
            # tombstoned backing array with no root (or an empty one).
            if self.root is not None and self.root.subtree_count() != 0:
                raise IndexInvariantError("empty index with a non-empty root")
            return
        if self.root is None:
            raise IndexInvariantError("non-empty index without a root")

        seen: list[int] = []
        for node in self.nodes():
            if node.is_leaf:
                if node.children:
                    raise IndexInvariantError("leaf node with children")
                if not node.entry_ids and node is not self.root:
                    raise IndexInvariantError("empty non-root leaf")
                seen.extend(node.entry_ids)
                if node is not self.root and not (
                    self.min_entries <= len(node.entry_ids) <= self.max_entries
                ):
                    raise IndexInvariantError(
                        f"leaf fanout {len(node.entry_ids)} outside "
                        f"[{self.min_entries}, {self.max_entries}]"
                    )
                for pid in node.entry_ids:
                    if not node.covers_point(self.points[pid], self.metric):
                        raise IndexInvariantError(
                            f"leaf does not cover its entry {pid}"
                        )
            else:
                if node.entry_ids:
                    raise IndexInvariantError("internal node with entry ids")
                if not node.children:
                    raise IndexInvariantError("internal node without children")
                if node is not self.root and not (
                    self.min_entries <= len(node.children) <= self.max_entries
                ):
                    raise IndexInvariantError(
                        f"internal fanout {len(node.children)} outside "
                        f"[{self.min_entries}, {self.max_entries}]"
                    )
                for child in node.children:
                    if child.level != node.level - 1:
                        raise IndexInvariantError(
                            f"child level {child.level} under level {node.level}"
                        )
                    if not node.covers(child):
                        raise IndexInvariantError(
                            "inclusion property violated: parent does not "
                            "cover child"
                        )
        expected = set(range(len(self.points))) - self._deleted
        if len(seen) != len(set(seen)) or set(seen) != expected:
            missing = expected - set(seen)
            dupes = len(seen) - len(set(seen))
            raise IndexInvariantError(
                f"leaf entries do not partition the ids: {len(missing)} "
                f"missing, {dupes} duplicated"
            )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.size}, dim={self.dim}, "
            f"height={self.height}, nodes={self.node_count()})"
        )
