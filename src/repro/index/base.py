"""The index contract that the join algorithms rely on.

A tree index satisfies the contract if

1. every node exposes a *bounding shape* obeying the inclusion property
   (parents cover children), and
2. the shape supports three bounds, each computable in constant time:
   an upper bound on the pairwise distance of covered points
   (:meth:`IndexNode.diameter`), a lower bound on the distance between two
   nodes (:meth:`IndexNode.min_dist`), and an upper bound on the pairwise
   distance of points covered by either of two nodes
   (:meth:`IndexNode.union_diameter`).

Those three bounds are the *only* geometric operations in
:mod:`repro.core.ssj` and :mod:`repro.core.csj`; this is what makes the
algorithms index-independent (Experiment 4 of the paper).
"""

from __future__ import annotations

import heapq
import itertools
from abc import ABC, abstractmethod
from typing import Iterator, Optional

import numpy as np

from repro.geometry.metrics import Metric, get_metric

__all__ = ["IndexNode", "SpatialIndex", "IndexInvariantError"]


class IndexInvariantError(AssertionError):
    """Raised by :meth:`SpatialIndex.validate` when a tree is malformed."""


class IndexNode(ABC):
    """A node of a spatial index tree.

    ``level`` is 0 for leaves and increases toward the root.  Leaves hold
    ``entry_ids`` (indices into the tree's point array); internal nodes
    hold ``children``.
    """

    __slots__ = ("level", "children", "entry_ids", "_subtree_ids")

    def __init__(self, level: int):
        self.level = level
        self.children: list["IndexNode"] = []
        self.entry_ids: list[int] = []
        self._subtree_ids: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    @property
    def fanout(self) -> int:
        """Number of direct children (entries for a leaf)."""
        return len(self.entry_ids) if self.is_leaf else len(self.children)

    def subtree_ids(self) -> np.ndarray:
        """All point ids stored in this subtree, cached after first use.

        Caches are invalidated along the insertion path by the trees, so it
        is safe to interleave queries and updates.
        """
        if self._subtree_ids is None:
            if self.is_leaf:
                self._subtree_ids = np.asarray(self.entry_ids, dtype=np.intp)
            else:
                parts = [child.subtree_ids() for child in self.children]
                self._subtree_ids = (
                    np.concatenate(parts) if parts else np.empty(0, dtype=np.intp)
                )
        return self._subtree_ids

    def invalidate_cache(self) -> None:
        """Drop the cached subtree-id array (after structural changes)."""
        self._subtree_ids = None

    def subtree_count(self) -> int:
        """Number of points stored in this subtree."""
        return int(self.subtree_ids().shape[0])

    # -- geometric contract -------------------------------------------------
    @abstractmethod
    def diameter(self, metric: Metric) -> float:
        """Upper bound on the distance between any two covered points."""

    @abstractmethod
    def min_dist(self, other: "IndexNode", metric: Metric) -> float:
        """Lower bound on the distance between points of the two nodes."""

    @abstractmethod
    def union_diameter(self, other: "IndexNode", metric: Metric) -> float:
        """Upper bound on pairwise distances over the union of both nodes."""

    @abstractmethod
    def min_dist_point(self, point: np.ndarray, metric: Metric) -> float:
        """Lower bound on the distance from ``point`` to any covered point."""

    @abstractmethod
    def covers(self, child: "IndexNode") -> bool:
        """Inclusion property check: does this node's shape cover ``child``'s?"""

    @abstractmethod
    def covers_point(self, point: np.ndarray, metric: Metric) -> bool:
        """Does this node's bounding shape contain ``point``?"""


class SpatialIndex(ABC):
    """Base class for the tree indexes.

    Subclasses implement :meth:`_build` (and optionally incremental
    maintenance); queries, traversal, statistics and invariant validation
    are provided generically on top of the :class:`IndexNode` contract.
    """

    #: Name used by CLI / experiment tables.
    name: str = "abstract"

    def __init__(
        self,
        points: np.ndarray,
        metric: object = None,
        max_entries: int = 64,
        min_fill: float = 0.4,
    ):
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2:
            raise ValueError(f"points must be a (n, d) array, got shape {pts.shape}")
        if max_entries < 2:
            raise ValueError(f"max_entries must be >= 2, got {max_entries}")
        if not 0.0 < min_fill <= 0.5:
            raise ValueError(f"min_fill must be in (0, 0.5], got {min_fill}")
        self.points = pts
        self.metric = get_metric(metric)
        self.max_entries = int(max_entries)
        self.min_entries = max(1, int(max_entries * min_fill))
        self.root: Optional[IndexNode] = None
        #: Row ids removed by delete(); validate() excludes them from the
        #: partition check.
        self._deleted: set[int] = set()
        if len(pts):
            self._build()

    # -- construction -------------------------------------------------------
    @abstractmethod
    def _build(self) -> None:
        """Populate :attr:`root` from :attr:`points`."""

    # -- generic queries ----------------------------------------------------
    def range_query(self, point: np.ndarray, radius: float) -> np.ndarray:
        """Ids of stored points with distance strictly below ``radius``.

        Strict inequality matches the join semantics used throughout the
        paper's pseudo-code ("distance ... < range").
        """
        p = np.asarray(point, dtype=float)
        if self.root is None:
            return np.empty(0, dtype=np.intp)
        hits: list[np.ndarray] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.min_dist_point(p, self.metric) >= radius:
                continue
            if node.is_leaf:
                ids = np.asarray(node.entry_ids, dtype=np.intp)
                dists = self.metric.point_to_points(p, self.points[ids])
                hits.append(ids[dists < radius])
            else:
                stack.extend(node.children)
        if not hits:
            return np.empty(0, dtype=np.intp)
        return np.sort(np.concatenate(hits))

    def nearest(self, point: np.ndarray, k: int = 1) -> np.ndarray:
        """Ids of the ``k`` nearest stored points, closest first.

        Classic best-first (branch-and-bound) search: nodes are expanded
        in order of their minimum possible distance and pruned once ``k``
        candidates closer than the node's bound are known.  Ties are
        broken by id for determinism.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if self.root is None:
            return np.empty(0, dtype=np.intp)
        p = np.asarray(point, dtype=float)
        counter = itertools.count()
        frontier = [(self.root.min_dist_point(p, self.metric), next(counter), self.root)]
        # Max-heap of the best k candidates as (-distance, id).
        best: list[tuple[float, int]] = []
        while frontier:
            bound, _, node = heapq.heappop(frontier)
            # Prune only on a strictly larger bound: a node at exactly the
            # worst distance may still hold an equal-distance smaller id,
            # which the deterministic tie-break prefers.
            if len(best) == k and bound > -best[0][0]:
                break
            if node.is_leaf:
                ids = np.asarray(node.entry_ids, dtype=np.intp)
                if not len(ids):
                    continue
                dists = self.metric.point_to_points(p, self.points[ids])
                for dist, pid in zip(dists.tolist(), ids.tolist()):
                    if len(best) < k:
                        heapq.heappush(best, (-dist, -pid))
                    elif (dist, pid) < (-best[0][0], -best[0][1]):
                        heapq.heapreplace(best, (-dist, -pid))
            else:
                for child in node.children:
                    child_bound = child.min_dist_point(p, self.metric)
                    if len(best) < k or child_bound <= -best[0][0]:
                        heapq.heappush(frontier, (child_bound, next(counter), child))
        ordered = sorted((-nd, -nid) for nd, nid in best)
        return np.array([pid for _, pid in ordered], dtype=np.intp)

    # -- traversal and statistics --------------------------------------------
    def nodes(self) -> Iterator[IndexNode]:
        """Pre-order iterator over all nodes."""
        if self.root is None:
            return
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.children)

    def leaves(self) -> Iterator[IndexNode]:
        """Iterator over leaf nodes."""
        return (node for node in self.nodes() if node.is_leaf)

    @property
    def size(self) -> int:
        """Number of rows in the backing point array."""
        return len(self.points)

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed points."""
        return self.points.shape[1] if self.points.ndim == 2 else 0

    @property
    def height(self) -> int:
        """Number of levels; a single-leaf tree has height 1."""
        return self.root.level + 1 if self.root is not None else 0

    def node_count(self) -> int:
        """Total number of nodes in the tree."""
        return sum(1 for _ in self.nodes())

    def leaf_count(self) -> int:
        """Number of leaf nodes."""
        return sum(1 for _ in self.leaves())

    # -- invariant checking ---------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`IndexInvariantError`.

        Checks: the inclusion property, consistent levels, fanout limits
        (root excepted), and that leaf entries exactly partition the point
        ids.  Used heavily by the test suite after random update sequences.
        """
        if len(self.points) == 0:
            if self.root is not None and self.root.subtree_count() != 0:
                raise IndexInvariantError("empty index with a non-empty root")
            return
        if self.root is None:
            raise IndexInvariantError("non-empty index without a root")

        seen: list[int] = []
        for node in self.nodes():
            if node.is_leaf:
                if node.children:
                    raise IndexInvariantError("leaf node with children")
                if not node.entry_ids and node is not self.root:
                    raise IndexInvariantError("empty non-root leaf")
                seen.extend(node.entry_ids)
                if node is not self.root and not (
                    self.min_entries <= len(node.entry_ids) <= self.max_entries
                ):
                    raise IndexInvariantError(
                        f"leaf fanout {len(node.entry_ids)} outside "
                        f"[{self.min_entries}, {self.max_entries}]"
                    )
                for pid in node.entry_ids:
                    if not node.covers_point(self.points[pid], self.metric):
                        raise IndexInvariantError(
                            f"leaf does not cover its entry {pid}"
                        )
            else:
                if node.entry_ids:
                    raise IndexInvariantError("internal node with entry ids")
                if not node.children:
                    raise IndexInvariantError("internal node without children")
                if node is not self.root and not (
                    self.min_entries <= len(node.children) <= self.max_entries
                ):
                    raise IndexInvariantError(
                        f"internal fanout {len(node.children)} outside "
                        f"[{self.min_entries}, {self.max_entries}]"
                    )
                for child in node.children:
                    if child.level != node.level - 1:
                        raise IndexInvariantError(
                            f"child level {child.level} under level {node.level}"
                        )
                    if not node.covers(child):
                        raise IndexInvariantError(
                            "inclusion property violated: parent does not "
                            "cover child"
                        )
        expected = set(range(len(self.points))) - self._deleted
        if len(seen) != len(set(seen)) or set(seen) != expected:
            missing = expected - set(seen)
            dupes = len(seen) - len(set(seen))
            raise IndexInvariantError(
                f"leaf entries do not partition the ids: {len(missing)} "
                f"missing, {dupes} duplicated"
            )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.size}, dim={self.dim}, "
            f"height={self.height}, nodes={self.node_count()})"
        )
