"""Compact Similarity Joins — a full reproduction of Bryan, Eberhardt &
Faloutsos, ICDE 2008.

A similarity join reports every pair of points within a query range; in
locally dense data its output explodes quadratically.  This library
implements the paper's lossless *compact* join output — groups of mutually
qualifying points — together with every substrate the paper relies on:
R-tree / R*-tree / M-tree indexes, bulk loaders, the epsilon-grid-order
join, dataset generators, and the full experiment harness reproducing the
paper's figures.

Quickstart::

    import numpy as np
    from repro import similarity_join

    points = np.random.default_rng(0).random((10_000, 2))
    result = similarity_join(points, eps=0.01, algorithm="csj", g=10)
    print(result.stats.groups_emitted, "groups,",
          result.stats.links_emitted, "residual links,",
          result.output_bytes, "output bytes")

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured record.
"""

from repro.api import (
    build_index,
    maintained_join,
    open_service,
    similarity_join,
    spatial_join_datasets,
)
from repro.dynamic import MaintainedJoin
from repro.core import (
    CallbackSink,
    CollectSink,
    CountingSink,
    EquivalenceReport,
    JoinResult,
    JoinSink,
    TextSink,
    brute_force_links,
    check_equivalence,
    compact_spatial_join,
    connected_components,
    count_links,
    csj,
    egrid_join,
    expand_result,
    find_outliers,
    group_size_profile,
    make_sink,
    metric_similarity_join,
    ncsj,
    pbsm_join,
    rank_by_isolation,
    spatial_hash_join,
    spatial_join,
    ssj,
)
from repro.errors import (
    EXIT_CODES,
    AdmissionRejectedError,
    BudgetExceededError,
    CheckpointCorruptError,
    CircuitOpenError,
    InvalidInputError,
    PoisonTaskError,
    ReproError,
    SinkIOError,
    WorkerPoolError,
)
from repro.obs import (
    MetricsRegistry,
    ProgressHeartbeat,
    Tracer,
    configure_logging,
    configure_tracing,
    get_logger,
    get_registry,
    run_context,
)
from repro.parallel import SupervisorConfig, parallel_join
from repro.geometry import MBR, Ball, Metric, get_metric
from repro.index import (
    MTree,
    RStarTree,
    RTree,
    SpatialIndex,
    bulk_load,
    load_index,
    save_index,
)
from repro.service import (
    CircuitBreaker,
    JoinRequest,
    JoinService,
    RequestOutcome,
    ResultCache,
    ServiceConfig,
)
from repro.resilience import (
    AtomicTextSink,
    Budget,
    CheckpointedJoin,
    FlakyIndex,
    FlakySink,
    FlakyWorker,
    RetryingSink,
)
from repro.stats import JoinStats, correlation_dimension

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # high-level API
    "similarity_join",
    "spatial_join_datasets",
    "build_index",
    "maintained_join",
    "MaintainedJoin",
    "ResultCache",
    "open_service",
    "JoinService",
    "JoinRequest",
    "RequestOutcome",
    "ServiceConfig",
    "CircuitBreaker",
    "parallel_join",
    "SupervisorConfig",
    # algorithms
    "ssj",
    "ncsj",
    "csj",
    "spatial_join",
    "compact_spatial_join",
    "egrid_join",
    "pbsm_join",
    "spatial_hash_join",
    "metric_similarity_join",
    "brute_force_links",
    "count_links",
    # verification and mining
    "check_equivalence",
    "expand_result",
    "EquivalenceReport",
    "find_outliers",
    "group_size_profile",
    "rank_by_isolation",
    "connected_components",
    "correlation_dimension",
    # results and sinks
    "JoinResult",
    "JoinSink",
    "CollectSink",
    "CountingSink",
    "CallbackSink",
    "TextSink",
    "make_sink",
    "JoinStats",
    # geometry and indexes
    "MBR",
    "Ball",
    "Metric",
    "get_metric",
    "SpatialIndex",
    "RTree",
    "RStarTree",
    "MTree",
    "bulk_load",
    "save_index",
    "load_index",
    # errors and resilience
    "ReproError",
    "InvalidInputError",
    "BudgetExceededError",
    "SinkIOError",
    "CheckpointCorruptError",
    "PoisonTaskError",
    "WorkerPoolError",
    "AdmissionRejectedError",
    "CircuitOpenError",
    "EXIT_CODES",
    "Budget",
    "CheckpointedJoin",
    "AtomicTextSink",
    "RetryingSink",
    "FlakySink",
    "FlakyIndex",
    "FlakyWorker",
    # observability
    "configure_logging",
    "get_logger",
    "run_context",
    "MetricsRegistry",
    "get_registry",
    "Tracer",
    "configure_tracing",
    "ProgressHeartbeat",
]
